"""Command-line entry point: queries, batch/serve modes, calibration.

Legacy one-shot queries (unchanged):

    python -m repro "run classification on adult having epsilon 0.01;"
    python -m repro --file queries.ml4all
    echo "run svm on svm1;" | python -m repro -

Batch mode -- many optimize() requests through the plan-cached
:class:`~repro.service.OptimizerService`:

    python -m repro batch requests.txt --workers 8

Serve mode -- a line-oriented request loop on stdin (one response per
request; repeated workloads hit the warm plan cache):

    printf 'adult epsilon=0.01\\nadult epsilon=0.01\\n' | python -m repro serve

Both batch and serve accept ``--train`` (execute each chosen plan on a
per-request engine clone), ``--adaptive`` (train under the adaptive
runtime: telemetry, mid-flight re-optimization, calibration; implies
``--train``), ``--calibration PATH`` (persist learned correction
factors so a restarted server starts calibrated) and ``--cache PATH``
(persist the plan store -- speculation artifacts included -- so a
restarted server answers previously seen workloads without
re-speculating; ``.db``/``.sqlite`` selects the SQLite backend, any
other extension the JSON one).

Calibrate mode -- run one workload repeatedly under the adaptive
runtime and persist what the traces taught the calibration store:

    python -m repro calibrate adult --epsilon 0.01 --runs 3 \\
        --store calibration.json

Request lines are ``<dataset> [key=value ...]`` with the keys of
:meth:`ML4all.optimize` (``task``, ``epsilon``, ``max_iter``,
``time_budget``, ``algorithm``, ``batch``, ``step``, ``convergence``,
``l2``, ``fixed_iterations``, ``seed``).  Blank lines and ``#`` comments
are skipped.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import ML4all
from repro.errors import ReproError

#: Request-line keys coerced to int / float; the rest stay strings.
_INT_KEYS = {"max_iter", "batch", "fixed_iterations", "seed"}
_FLOAT_KEYS = {"epsilon", "time_budget", "step", "l2"}
_STR_KEYS = {"task", "algorithm", "convergence"}
_ALL_KEYS = _INT_KEYS | _FLOAT_KEYS | _STR_KEYS


def parse_request_line(line) -> dict:
    """Parse one ``<dataset> key=value ...`` request line."""
    tokens = line.split()
    if not tokens or "=" in tokens[0]:
        raise ReproError(
            f"request line must start with a dataset reference: {line!r}"
        )
    request = {"dataset": tokens[0]}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not key or not value:
            raise ReproError(f"expected key=value, got {token!r}")
        if key not in _ALL_KEYS:
            raise ReproError(
                f"unknown request key {key!r}; expected one of "
                f"{sorted(_ALL_KEYS)}"
            )
        try:
            if key in _INT_KEYS:
                request[key] = int(value)
            elif key in _FLOAT_KEYS:
                request[key] = float(value)
            else:
                request[key] = value
        except ValueError:
            raise ReproError(
                f"invalid value for {key}: {value!r}"
            ) from None
    return request


def iter_request_lines(handle):
    """Yield parsed request dicts from a line stream, skipping comments."""
    for line in handle:
        line = line.split("#", 1)[0].strip()
        if line:
            yield parse_request_line(line)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ML4all declarative queries on the simulated "
                    "cluster.  Subcommands: 'batch FILE' optimizes many "
                    "requests through the plan cache; 'serve' answers "
                    "request lines from stdin.",
    )
    parser.add_argument(
        "query", nargs="?",
        help="query text, or '-' to read from stdin",
    )
    parser.add_argument("--file", help="read queries from a file")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    return parser


def _service_parser(prog, description):
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    parser.add_argument("--workers", type=int, default=None,
                        help="max concurrent optimize() computations")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="plan cache capacity (default 256)")
    parser.add_argument("--train", action="store_true",
                        help="execute each chosen plan on a per-request "
                             "engine clone (not just optimize)")
    parser.add_argument("--adaptive", action="store_true",
                        help="train under the adaptive runtime: telemetry, "
                             "mid-flight re-optimization, calibration "
                             "(implies --train)")
    parser.add_argument("--calibration", metavar="PATH", default=None,
                        help="load/persist the calibration store at PATH "
                             "(a restarted server starts calibrated)")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help="persist the plan store at PATH (.db/.sqlite "
                             "-> SQLite, else JSON); a restarted server "
                             "answers previously seen workloads without "
                             "re-speculating")
    return parser


def _train_and_report(system, requests, args):
    """Train-mode request loop shared by batch and serve."""
    results = system.train_many(
        requests, max_workers=args.workers, adaptive=args.adaptive
    )
    lines = []
    for request, result in zip(requests, results):
        lines.append(f"{request['dataset']}: {result.summary()}")
        if result.trace is not None and result.trace.switches:
            for switch in result.trace.switches:
                lines.append(
                    f"  switched {switch.from_plan} -> {switch.to_plan} "
                    f"at iteration {switch.iteration}: {switch.reason}"
                )
    return results, lines


def _save_calibration(system, args):
    if args.calibration:
        system.save_calibration(args.calibration)


def batch_main(argv) -> int:
    parser = _service_parser(
        "python -m repro batch",
        "Run a file of optimize() requests through the OptimizerService.",
    )
    parser.add_argument("requests", help="request file, or '-' for stdin")
    parser.add_argument("--repeat", type=int, default=1,
                        help="serve the request list N times (default 1; "
                             ">1 demonstrates the warm plan cache)")
    args = parser.parse_args(argv)

    try:
        if args.requests == "-":
            requests = list(iter_request_lines(sys.stdin))
        else:
            with open(args.requests) as handle:
                requests = list(iter_request_lines(handle))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not requests:
        print("error: no requests found", file=sys.stderr)
        return 2
    requests = requests * max(1, args.repeat)

    system = ML4all(seed=args.seed, calibration_path=args.calibration,
                    cache_path=args.cache)
    system.service(cache_size=args.cache_size)
    train_mode = args.train or args.adaptive
    start = time.perf_counter()
    try:
        if train_mode:
            results, lines = _train_and_report(system, requests, args)
        else:
            results = system.optimize_many(requests, max_workers=args.workers)
            lines = [
                f"{request['dataset']}: {result.summary()}"
                for request, result in zip(requests, results)
            ]
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start

    for line in lines:
        print(line)
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    verb = "train" if train_mode else "optimize"
    print(f"{len(results)} requests in {elapsed:.3f}s "
          f"({rate:.1f} {verb}/s)")
    print(system.service().stats_summary())
    _save_calibration(system, args)
    return 0


def serve_main(argv) -> int:
    parser = _service_parser(
        "python -m repro serve",
        "Answer optimize() request lines from stdin until EOF.",
    )
    args = parser.parse_args(argv)

    system = ML4all(seed=args.seed, calibration_path=args.calibration,
                    cache_path=args.cache)
    service = system.service(cache_size=args.cache_size)
    train_mode = args.train or args.adaptive
    served = failed = 0
    for line in sys.stdin:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        try:
            request = parse_request_line(line)
            if train_mode:
                _, lines = _train_and_report(system, [request], args)
            else:
                (result,) = system.optimize_many([request])
                lines = [f"{request['dataset']}: {result.summary()}"]
        except ReproError as exc:
            failed += 1
            print(f"error: {exc}", file=sys.stderr)
            continue
        served += 1
        for out in lines:
            print(out)
        sys.stdout.flush()
    print(service.stats_summary())
    _save_calibration(system, args)
    return 0 if failed == 0 or served > 0 else 1


def calibrate_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro calibrate",
        description="Run one workload repeatedly under the adaptive "
                    "runtime and persist the learned cost/iteration "
                    "correction factors.",
    )
    parser.add_argument("dataset", help="registry name or dataset file")
    parser.add_argument("--task", default=None)
    parser.add_argument("--epsilon", type=float, default=0.01)
    parser.add_argument("--max-iter", type=int, default=1000)
    parser.add_argument("--runs", type=int, default=3,
                        help="adaptive training runs (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="calibration store JSON: loaded when present, "
                             "saved afterwards")
    parser.add_argument("--perturb", action="append", default=[],
                        metavar="ALG=FACTOR",
                        help="deliberately mis-scale the cost model for one "
                             "algorithm (repeatable; shows calibration "
                             "correcting a known fault)")
    args = parser.parse_args(argv)

    from repro.gd.registry import ALGORITHMS

    factors = {}
    for item in args.perturb:
        alg, sep, value = item.partition("=")
        try:
            if not sep:
                raise ValueError(item)
            factors[alg] = float(value)
        except ValueError:
            print(f"error: --perturb expects ALG=FACTOR, got {item!r}",
                  file=sys.stderr)
            return 2
        if alg not in ALGORITHMS:
            # A typo here would silently calibrate an unperturbed model.
            print(f"error: --perturb names unknown algorithm {alg!r}; "
                  f"expected one of {sorted(ALGORITHMS)}", file=sys.stderr)
            return 2

    from repro.cluster import SimulatedCluster
    from repro.core.iterations import SpeculativeEstimator
    from repro.core.optimizer import GDOptimizer
    from repro.runtime import AdaptiveTrainer, PerturbedCostModel

    system = ML4all(seed=args.seed, calibration_path=args.store)
    try:
        dataset = system.load_dataset(args.dataset, task=args.task)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("before:", system.calibration.summary())

    for run in range(max(1, args.runs)):
        engine = SimulatedCluster(system.spec, seed=args.seed + run)
        optimizer = GDOptimizer(
            engine,
            estimator=SpeculativeEstimator(
                system.speculation, seed=args.seed
            ),
            cost_model=(
                PerturbedCostModel(system.spec, factors) if factors else None
            ),
            calibration=system.calibration,
        )
        trainer = AdaptiveTrainer(optimizer, calibration=system.calibration)
        training = system._training_spec(
            dataset, args.task, args.epsilon, args.max_iter, None, None,
            None, 0.0, args.seed + run,
        )
        try:
            outcome = trainer.train(dataset, training)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"run {run + 1}: {outcome.trace.summary()}")
        for switch in outcome.trace.switches:
            print(f"  switched {switch.from_plan} -> {switch.to_plan} "
                  f"at iteration {switch.iteration}: {switch.reason}")

    print("after:", system.calibration.summary())
    if args.store:
        system.save_calibration(args.store)
        print(f"calibration store saved to {args.store}")
    return 0


def query_main(args) -> int:
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    elif args.query == "-":
        text = sys.stdin.read()
    elif args.query:
        text = args.query
    else:
        build_parser().print_help()
        return 2

    system = ML4all(seed=args.seed)
    try:
        session = system.query(text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    result = session.last_result
    if hasattr(result, "result"):
        if result.report is not None:
            print(result.report.summary())
        print(result.result.summary())
    elif isinstance(result, dict) and "mse" in result:
        print(f"predictions computed; MSE vs ground truth: "
              f"{result['mse']:.4f}")
    else:
        print(result)
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return calibrate_main(argv[1:])
    return query_main(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
