"""repro -- reproduction of "A Cost-based Optimizer for Gradient Descent
Optimization" (Kaoudi et al., SIGMOD 2017; the ML4all system).

Public API highlights
---------------------
- :class:`repro.api.ML4all` -- the system facade: ``train``, ``optimize``,
  ``query`` (declarative language), ``predict``.
- :mod:`repro.core` -- the cost-based GD optimizer: operator abstraction,
  iterations estimator, plan space, cost model, executor.
- :mod:`repro.gd` -- the GD algorithm zoo (pure math).
- :mod:`repro.cluster` -- the simulated Spark/HDFS substrate.
- :mod:`repro.data` -- Table 2 dataset registry and LIBSVM IO.
- :mod:`repro.experiments` -- one module per paper figure/table.
"""

__version__ = "1.0.0"
