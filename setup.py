"""Setup shim.

All metadata lives in pyproject.toml.  The offline environment lacks the
``wheel`` package, which setuptools' PEP 660 editable builds require (the
``bdist_wheel`` command and ``wheel.wheelfile.WheelFile``); the
``_offline_build`` module registers minimal stand-ins when -- and only
when -- the real package is missing, so ``pip install -e .
--no-build-isolation`` works both offline and in normal environments.
"""

import os
import sys

from setuptools import setup

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _offline_build import ensure_wheel_modules  # noqa: E402

setup(cmdclass=ensure_wheel_modules())
