"""Integration tests for the plan executor on the simulated cluster."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=800, d=8, task="linreg", spec=spec, seed=4, noise=0.01,
    )


@pytest.fixture
def training():
    return TrainingSpec(task="linreg", step_size="constant:0.1",
                        tolerance=1e-5, max_iter=2000, seed=1)


class TestExecution:
    def test_bgd_converges_with_real_math(self, engine, dataset, training):
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert result.converged
        # Weights actually solve the regression problem.
        pred = dataset.X @ result.weights
        mse = float(np.mean((pred - dataset.y) ** 2))
        assert mse < 0.01

    def test_simulated_time_positive_and_matches_clock(self, engine,
                                                       dataset, training):
        t0 = engine.clock
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert result.sim_seconds == pytest.approx(engine.clock - t0)

    def test_deltas_recorded_per_iteration(self, engine, dataset, training):
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert len(result.deltas) == result.iterations

    def test_phase_seconds_cover_plan_phases(self, engine, dataset, training):
        result = execute_plan(
            engine, dataset, GDPlan("sgd", "lazy", "shuffle"), training
        )
        assert "sample" in result.phase_seconds
        assert "compute" in result.phase_seconds
        assert "transform" in result.phase_seconds  # lazy per-iteration
        assert "loop" in result.phase_seconds

    def test_eager_charges_transform_once(self, engine, dataset, training):
        result = execute_plan(
            engine, dataset, GDPlan("mgd", "eager", "shuffle", 50), training
        )
        assert result.phase_seconds.get("transform", 0) > 0

    def test_max_iter_cap(self, engine, dataset):
        training = TrainingSpec(task="linreg", tolerance=1e-15, max_iter=7,
                                seed=1)
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert result.iterations == 7
        assert not result.converged

    def test_time_budget_stops_run(self, engine, dataset):
        training = TrainingSpec(task="linreg", tolerance=1e-15, max_iter=5000,
                                time_budget_s=0.5, seed=1)
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert result.timed_out
        assert result.iterations < 5000

    def test_all_eleven_plans_execute(self, engine, dataset, training):
        from repro.core.plan_space import enumerate_plans

        for plan in enumerate_plans(batch_sizes={"mgd": 50}):
            engine.reset()
            result = execute_plan(engine, dataset, plan, training)
            assert result.iterations >= 1
            assert result.sim_seconds > 0

    def test_lazy_bgd_rejected(self, engine, dataset, training):
        plan = GDPlan("sgd", "lazy", "shuffle")
        object.__setattr__(plan, "algorithm", "bgd")  # corrupt a plan
        with pytest.raises(PlanError):
            execute_plan(engine, dataset, plan, training)

    def test_same_seed_same_result(self, spec, dataset, training):
        r1 = execute_plan(SimulatedCluster(spec, seed=2), dataset,
                          GDPlan("sgd", "eager", "random"), training)
        r2 = execute_plan(SimulatedCluster(spec, seed=2), dataset,
                          GDPlan("sgd", "eager", "random"), training)
        np.testing.assert_array_equal(r1.weights, r2.weights)
        assert r1.iterations == r2.iterations

    def test_distributed_bgd_aggregates_over_network(self, spec, training):
        ds = make_dataset(n_phys=1000, d=8, sim_n=1_000_000, spec=spec,
                          task="linreg", noise=0.01, seed=4,
                          block_bytes=4 * 1024 * 1024)
        assert ds.n_partitions > 1
        engine = SimulatedCluster(spec, seed=0)
        result = execute_plan(engine, ds, GDPlan("bgd"), training)
        assert result.metrics["update"]["network_bytes"] > 0

    def test_local_bgd_no_network(self, engine, dataset, training):
        assert dataset.n_partitions == 1
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        assert result.metrics.get("update", {}).get("network_bytes", 0) == 0

    def test_mix_plan_ships_weights_not_batches(self, spec, training):
        """Data-local compute: network per iteration ~ 2 weight vectors,
        far below the sampled batch's bytes."""
        ds = make_dataset(n_phys=1000, d=8, sim_n=1_000_000, spec=spec,
                          task="linreg", noise=0.01, seed=4,
                          block_bytes=4 * 1024 * 1024)
        engine = SimulatedCluster(spec, seed=0)
        training_short = TrainingSpec(task="linreg", tolerance=1e-15,
                                      max_iter=20, seed=1)
        result = execute_plan(
            engine, ds, GDPlan("mgd", "eager", "shuffle", 500),
            training_short,
        )
        update_bytes = result.metrics["update"]["network_bytes"]
        batch_bytes = 500 * ds.stats.bytes_per_row("binary")
        assert update_bytes <= 20 * 3 * ds.stats.weight_vector_bytes
        assert update_bytes < batch_bytes * 20


class TestSVRGPlan:
    def test_svrg_via_executor(self, engine, dataset):
        training = TrainingSpec(task="linreg", tolerance=1e-5,
                                max_iter=600, seed=1)
        plan = GDPlan("svrg", "eager", "shuffle")
        result = execute_plan(engine, dataset, plan, training)
        assert result.iterations >= 1
        # Anchor iterations perform full scans: compute phase must have
        # processed more rows than iterations alone would (spot check).
        assert result.metrics["compute"]["rows_processed"] > \
            result.iterations

    def test_svrg_reaches_low_loss(self, engine, dataset):
        from repro.gd.gradients import LinearRegressionGradient

        training = TrainingSpec(task="linreg", tolerance=1e-6,
                                max_iter=800, seed=1)
        result = execute_plan(
            engine, dataset, GDPlan("svrg", "eager", "shuffle"), training
        )
        g = LinearRegressionGradient()
        assert g.loss(result.weights, dataset.X, dataset.y) < \
            g.loss(np.zeros(8), dataset.X, dataset.y) / 5
