"""Unit tests + property tests for the error-sequence curve fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curve_fit import (
    MAX_ESTIMATED_ITERATIONS,
    fit_error_sequence,
    fit_exponential,
    fit_inverse,
    fit_power,
)
from repro.errors import EstimationError


class TestInverseFit:
    def test_recovers_exact_a(self):
        a = 5.0
        errors = a / np.arange(1, 50)
        curve = fit_inverse(errors)
        assert curve.params[0] == pytest.approx(a)
        assert curve.r2 == pytest.approx(1.0)

    def test_iterations_for_is_paper_formula(self):
        # T(eps) = a / eps (Algorithm 1 line 10).
        errors = 2.0 / np.arange(1, 30)
        curve = fit_inverse(errors)
        assert curve.iterations_for(0.01) == pytest.approx(200, abs=1)

    def test_noise_tolerated(self):
        rng = np.random.default_rng(0)
        i = np.arange(1, 200)
        errors = 3.0 / i * np.exp(rng.normal(0, 0.1, size=len(i)))
        curve = fit_inverse(errors)
        assert curve.params[0] == pytest.approx(3.0, rel=0.3)

    @given(a=st.floats(min_value=0.01, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, a):
        errors = a / np.arange(1, 40)
        curve = fit_inverse(errors)
        # error_at inverts iterations_for up to ceil-rounding.
        eps = a / 17.3
        T = curve.iterations_for(eps)
        assert curve.error_at(T) <= eps * 1.01


class TestPowerFit:
    def test_recovers_exponent(self):
        i = np.arange(1, 100)
        errors = 4.0 / i ** 0.75
        curve = fit_power(errors)
        a, p = curve.params
        assert a == pytest.approx(4.0, rel=0.01)
        assert p == pytest.approx(0.75, rel=0.01)

    def test_power_one_matches_inverse(self):
        errors = 2.0 / np.arange(1, 60)
        power = fit_power(errors)
        inverse = fit_inverse(errors)
        assert power.iterations_for(1e-3) == pytest.approx(
            inverse.iterations_for(1e-3), rel=0.02
        )

    def test_increasing_sequence_rejected(self):
        errors = np.arange(1, 20, dtype=float)
        with pytest.raises(EstimationError):
            fit_power(errors)

    @given(
        a=st.floats(min_value=0.1, max_value=100),
        p=st.floats(min_value=0.2, max_value=2.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovery_property(self, a, p):
        i = np.arange(1, 80)
        errors = a / i ** p
        curve = fit_power(errors)
        assert curve.params[1] == pytest.approx(p, rel=0.05)


class TestExponentialFit:
    def test_recovers_rate(self):
        i = np.arange(1, 60)
        errors = 2.0 * 0.9 ** i
        curve = fit_exponential(errors)
        a, r = curve.params
        assert r == pytest.approx(0.9, rel=0.01)

    def test_iterations_for(self):
        errors = 1.0 * 0.8 ** np.arange(1, 40)
        curve = fit_exponential(errors)
        T = curve.iterations_for(1e-4)
        assert curve.error_at(T) <= 1e-4 * 1.05

    def test_non_decaying_rejected(self):
        errors = np.full(20, 3.0) * 1.01 ** np.arange(20)
        with pytest.raises(EstimationError):
            fit_exponential(errors)

    def test_target_above_a_returns_one(self):
        errors = 2.0 * 0.9 ** np.arange(1, 40)
        curve = fit_exponential(errors)
        assert curve.iterations_for(10.0) == 1


class TestAutoSelection:
    def test_picks_exponential_for_linear_convergence(self):
        errors = 5.0 * 0.85 ** np.arange(1, 50)
        curve = fit_error_sequence(errors, model="auto")
        assert curve.model == "exponential"

    def test_picks_power_family_for_sublinear(self):
        errors = 5.0 / np.arange(1, 50) ** 0.6
        curve = fit_error_sequence(errors, model="auto")
        assert curve.model in ("power", "inverse")
        assert curve.iterations_for(0.01) > 1000

    def test_explicit_model_respected(self):
        errors = 5.0 / np.arange(1, 50)
        assert fit_error_sequence(errors, model="inverse").model == "inverse"

    def test_unknown_model(self):
        with pytest.raises(EstimationError):
            fit_error_sequence([1, 0.5, 0.25], model="spline")


class TestEdgeCases:
    def test_too_few_points(self):
        with pytest.raises(EstimationError):
            fit_inverse([1.0, 0.5])

    def test_nonpositive_errors_dropped(self):
        errors = [5.0, 2.5, 0.0, 1.6, -1.0, 1.25, 1.0, 0.83]
        curve = fit_inverse(errors)
        assert curve.n_points == 6

    def test_nan_errors_dropped(self):
        errors = [5.0, np.nan, 2.5, 1.6, 1.25, np.inf, 1.0]
        curve = fit_inverse(errors)
        assert curve.n_points == 5

    def test_estimate_capped(self):
        errors = 1e6 / np.arange(1, 30)
        curve = fit_inverse(errors)
        assert curve.iterations_for(1e-12) == MAX_ESTIMATED_ITERATIONS

    def test_tolerance_must_be_positive(self):
        curve = fit_inverse(2.0 / np.arange(1, 20))
        with pytest.raises(EstimationError):
            curve.iterations_for(0.0)

    def test_error_at_requires_valid_iteration(self):
        curve = fit_inverse(2.0 / np.arange(1, 20))
        with pytest.raises(EstimationError):
            curve.error_at(0)

    def test_describe_mentions_model(self):
        curve = fit_inverse(2.0 / np.arange(1, 20))
        assert "error(i)" in curve.describe()
        curve = fit_power(2.0 / np.arange(1, 20) ** 0.5)
        assert "^" in curve.describe()

    def test_mismatched_lengths(self):
        with pytest.raises(EstimationError):
            fit_inverse([1.0, 0.5, 0.25], iterations=[1, 2])
