"""Unit and property tests for the Section 7 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.cluster.storage import DatasetStats
from repro.core.cost_model import (
    CostModel,
    compute_cpu_per_unit,
    cpu_cost,
    io_cost,
    layout_for,
    network_cost,
    transform_cpu_per_unit,
)
from repro.core.plans import GDPlan


@pytest.fixture
def spec():
    return ClusterSpec(jitter_sigma=0.0)


def stats_for(n=100_000, d=50, density=1.0, sparse=False):
    return DatasetStats("x", "svm", n=n, d=d, density=density,
                        is_sparse=sparse)


class TestLayout:
    def test_partition_count_matches_table1(self, spec):
        stats = stats_for(n=2_000_000, d=100)
        layout = layout_for(spec, stats, "binary")
        expected_p = -(-stats.binary_bytes // spec.hdfs_block_bytes)
        assert layout.p == expected_p

    def test_units_per_partition(self, spec):
        stats = stats_for(n=2_000_000, d=100)
        layout = layout_for(spec, stats, "binary")
        assert layout.k == -(-stats.n // layout.p)
        assert layout.k * layout.p >= stats.n

    def test_text_layout_has_more_partitions_when_text_is_bigger(self, spec):
        stats = DatasetStats("x", "svm", n=5_000_000, d=100,
                             row_text_bytes=1800.0)
        text = layout_for(spec, stats, "text")
        binary = layout_for(spec, stats, "binary")
        assert text.p > binary.p


class TestFormulas:
    def test_io_cost_formula3_manual(self, spec):
        stats = stats_for(n=4_000_000, d=100)
        layout = layout_for(spec, stats, "binary")
        cost = io_cost(spec, layout, in_memory=False)
        full_waves = layout.p // spec.cap
        remaining = layout.p % spec.cap
        per_partition = spec.seek_disk_s + (
            layout.partition_bytes / spec.page_bytes * spec.page_io_disk_s
        )
        expected = (full_waves + (1 if remaining else 0)) * per_partition
        assert cost == pytest.approx(expected)

    def test_memory_io_cheaper(self, spec):
        layout = layout_for(spec, stats_for(n=4_000_000, d=100), "binary")
        assert io_cost(spec, layout, True) < io_cost(spec, layout, False)

    def test_cpu_cost_formula4_scales_with_waves(self, spec):
        small = layout_for(spec, stats_for(n=100_000, d=100), "binary")
        big = layout_for(spec, stats_for(n=10_000_000, d=100), "binary")
        cpu_unit = 1e-6
        assert cpu_cost(spec, big, cpu_unit) > cpu_cost(spec, small, cpu_unit)

    def test_network_cost_formula5(self, spec):
        nbytes = spec.packet_bytes * 10
        assert network_cost(spec, nbytes) == pytest.approx(
            spec.transfer_s(nbytes)
        )

    @given(n=st.integers(min_value=1000, max_value=10**8))
    @settings(max_examples=40, deadline=None)
    def test_io_cost_monotone_in_size(self, n):
        spec = ClusterSpec(jitter_sigma=0.0)
        small = layout_for(spec, stats_for(n=n, d=20), "binary")
        large = layout_for(spec, stats_for(n=2 * n, d=20), "binary")
        assert io_cost(spec, large, False) >= io_cost(spec, small, False)

    def test_cpu_per_unit_scales_with_nnz(self, spec):
        dense = layout_for(spec, stats_for(d=100), "binary")
        sparse = layout_for(
            spec, stats_for(d=100, density=0.1, sparse=True), "binary"
        )
        assert compute_cpu_per_unit(spec, dense) > \
            compute_cpu_per_unit(spec, sparse)
        assert transform_cpu_per_unit(spec, dense) > \
            transform_cpu_per_unit(spec, sparse)


class TestPlanCosts:
    def test_bgd_per_iteration_dominates_stochastic(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        bgd = sum(model.per_iteration_cost(GDPlan("bgd"), stats).values())
        sgd = sum(model.per_iteration_cost(
            GDPlan("sgd", "lazy", "shuffle"), stats).values())
        # Both share fixed per-iteration overheads (loop plumbing, the
        # sampling job), so the gap is bounded by the data-touch costs.
        assert bgd > 5 * sgd

    def test_bernoulli_costs_full_scan(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        bernoulli = model.per_iteration_cost(
            GDPlan("mgd", "eager", "bernoulli"), stats
        )["sample"]
        shuffle = model.per_iteration_cost(
            GDPlan("mgd", "eager", "shuffle"), stats
        )["sample"]
        assert bernoulli > 3 * shuffle

    def test_sgd_bernoulli_includes_empty_retries(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        sgd_sample = model.per_iteration_cost(
            GDPlan("sgd", "eager", "bernoulli"), stats
        )["sample"]
        mgd_sample = model.per_iteration_cost(
            GDPlan("mgd", "eager", "bernoulli"), stats
        )["sample"]
        # Poisson(1) is empty 37% of the time -> expected 1.58 scans.
        assert sgd_sample > 1.3 * mgd_sample

    def test_lazy_plans_have_no_transform_one_time(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        eager = model.one_time_cost(GDPlan("sgd", "eager", "shuffle"), stats)
        lazy = model.one_time_cost(GDPlan("sgd", "lazy", "shuffle"), stats)
        assert "transform" in eager
        assert "transform" not in lazy

    def test_lazy_pays_transform_per_iteration(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        lazy = model.per_iteration_cost(GDPlan("sgd", "lazy", "shuffle"),
                                        stats)
        assert "transform" in lazy
        eager = model.per_iteration_cost(GDPlan("sgd", "eager", "shuffle"),
                                         stats)
        assert "transform" not in eager

    def test_random_access_costs_scale_with_batch(self, spec):
        model = CostModel(spec)
        stats = stats_for(n=5_000_000, d=100)
        # Lazy plans sample the raw (uncached) text file, so every access
        # pays a disk seek -- the regime where random-partition hurts.
        small = model.per_iteration_cost(
            GDPlan("mgd", "lazy", "random", batch_size=10), stats
        )["sample"]
        large = model.per_iteration_cost(
            GDPlan("mgd", "lazy", "random", batch_size=1000), stats
        )["sample"]
        assert large > 20 * small

    def test_estimate_composition(self, spec):
        """Formula 7: total = one_time + T * per_iteration."""
        model = CostModel(spec)
        stats = stats_for()
        plan = GDPlan("bgd")
        one, per, total, breakdown = model.estimate(plan, stats, 100)
        assert total == pytest.approx(one + 100 * per)
        assert any(k.startswith("one_time:") for k in breakdown)
        assert any(k.startswith("iter:") for k in breakdown)

    @given(iterations=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_total_monotone_in_iterations(self, iterations):
        spec = ClusterSpec(jitter_sigma=0.0)
        model = CostModel(spec)
        stats = stats_for()
        plan = GDPlan("mgd", "eager", "shuffle")
        _, _, t1, _ = model.estimate(plan, stats, iterations)
        _, _, t2, _ = model.estimate(plan, stats, iterations + 1)
        assert t2 > t1

    def test_cache_capacity_changes_bgd_cost(self):
        stats = stats_for(n=50_000_000, d=100)  # ~40 GB binary
        cached_spec = ClusterSpec(jitter_sigma=0.0)
        tiny_cache = ClusterSpec(jitter_sigma=0.0,
                                 cache_bytes=1024 ** 3)
        fast = sum(CostModel(cached_spec).per_iteration_cost(
            GDPlan("bgd"), stats).values())
        slow = sum(CostModel(tiny_cache).per_iteration_cost(
            GDPlan("bgd"), stats).values())
        assert slow > fast

    def test_update_network_only_when_distributed(self, spec):
        model = CostModel(spec)
        small = stats_for(n=1000, d=10)  # single partition
        breakdown = model.per_iteration_cost(GDPlan("bgd"), small)
        # local update: pure CPU, roughly d * update_per_dim
        assert breakdown["update"] < 1e-3


class TestEstimateBatch:
    """The vectorized path must rank exactly like per-plan estimate()."""

    def plans(self):
        from repro.core.plan_space import enumerate_plans

        return enumerate_plans(batch_sizes={"mgd": 100})

    def assert_parity(self, spec, stats, iterations=None):
        model = CostModel(spec)
        plans = self.plans()
        iters = iterations or [7 + 3 * i for i in range(len(plans))]
        batch = model.estimate_batch(plans, stats, iters)
        for i, plan in enumerate(plans):
            one, per, total, breakdown = model.estimate(plan, stats, iters[i])
            assert batch.one_time_s[i] == one
            assert batch.per_iteration_s[i] == per
            assert batch.total_s[i] == total
            assert batch.breakdown(i) == breakdown
        loop_ranking = sorted(range(len(plans)),
                              key=lambda i: model.estimate(
                                  plans[i], stats, iters[i])[2])
        batch_ranking = sorted(range(len(plans)),
                               key=lambda i: batch.total_s[i])
        assert loop_ranking == batch_ranking

    def test_parity_dense(self, spec):
        self.assert_parity(spec, stats_for(n=100_000, d=50))

    def test_parity_optimizer_scenario(self, spec):
        # The tests/test_optimizer.py dataset shape (2000 x 20 logreg).
        self.assert_parity(
            spec, DatasetStats("test", "logreg", n=2000, d=20)
        )

    def test_parity_large_distributed(self, spec):
        self.assert_parity(spec, stats_for(n=50_000_000, d=100))

    def test_parity_sparse(self, spec):
        self.assert_parity(
            spec, stats_for(n=10_000_000, d=50_000, density=1e-3,
                            sparse=True)
        )

    def test_parity_tiny_cache(self):
        self.assert_parity(
            ClusterSpec(jitter_sigma=0.0, cache_bytes=1024),
            stats_for(n=5_000_000, d=200),
        )

    def test_parity_single_node(self):
        self.assert_parity(
            ClusterSpec(jitter_sigma=0.0, n_nodes=1, slots_per_node=1),
            stats_for(n=100_000, d=50),
        )

    @given(
        n=st.integers(min_value=1000, max_value=100_000_000),
        d=st.integers(min_value=1, max_value=10_000),
        iters=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_property(self, n, d, iters):
        spec = ClusterSpec(jitter_sigma=0.0)
        model = CostModel(spec)
        stats = stats_for(n=n, d=d)
        plans = self.plans()
        batch = model.estimate_batch(plans, stats, [iters] * len(plans))
        for i, plan in enumerate(plans):
            assert batch.total_s[i] == model.estimate(plan, stats, iters)[2]

    def test_empty_batch(self, spec):
        batch = CostModel(spec).estimate_batch([], stats_for(), [])
        assert len(batch) == 0

    def test_iteration_count_mismatch_raises(self, spec):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            CostModel(spec).estimate_batch(self.plans(), stats_for(), [1, 2])

    def test_argmin_is_cheapest(self, spec):
        model = CostModel(spec)
        plans = self.plans()
        batch = model.estimate_batch(plans, stats_for(),
                                     [100] * len(plans))
        best = batch.argmin()
        assert batch.total_s[best] == min(batch.total_s)
