"""Executor telemetry hooks and the runtime monitors."""

import numpy as np
import pytest

from repro.core.curve_fit import FittedCurve
from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError
from repro.runtime import (
    AdaptiveSettings,
    ConvergenceMonitor,
    TelemetryRecorder,
)

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=300, d=8, task="logreg", spec=spec, seed=2)


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-4, max_iter=40, seed=0)


def fresh_engine(spec):
    from repro.cluster import SimulatedCluster

    return SimulatedCluster(spec, seed=0)


class TestExecutorMonitorHook:
    def test_monitor_sees_every_iteration(self, spec, dataset, training):
        recorder = TelemetryRecorder()
        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=recorder,
        )
        assert recorder.iterations == result.iterations
        assert recorder.deltas == pytest.approx(list(result.deltas))
        # Clocks are monotone non-decreasing across records.
        clocks = [r.clock for r in recorder.records]
        assert clocks == sorted(clocks)

    def test_attaching_a_recorder_is_behaviour_preserving(
        self, spec, dataset, training
    ):
        bare = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training
        )
        observed = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=TelemetryRecorder(),
        )
        assert np.array_equal(bare.weights, observed.weights)
        assert bare.sim_seconds == observed.sim_seconds
        assert bare.iterations == observed.iterations
        assert not observed.stopped_by_monitor

    def test_stop_request_is_honoured_gracefully(
        self, spec, dataset, training
    ):
        class StopAt:
            def __init__(self, at):
                self.at = at

            def on_iteration(self, iteration, delta, clock):
                return iteration >= self.at

        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=StopAt(7),
        )
        assert result.stopped_by_monitor
        assert result.iterations == 7
        assert not result.converged
        # Model state survives the stop.
        assert result.weights.shape == (dataset.stats.d,)
        assert np.any(result.weights != 0)

    def test_convergence_wins_over_stop_request(self, spec, dataset):
        class AlwaysStop:
            def on_iteration(self, iteration, delta, clock):
                return True

        training = TrainingSpec(
            task="logreg", tolerance=1e9, max_iter=40, seed=0
        )
        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=AlwaysStop(),
        )
        assert result.converged
        assert not result.stopped_by_monitor

    def test_initial_weights_resume_training(self, spec, dataset, training):
        # Constant step: resuming is then exactly equivalent to having
        # run straight through (schedules restart per segment by design).
        def spec_kwargs(max_iter):
            return TrainingSpec(task="logreg", tolerance=1e-4,
                                max_iter=max_iter, step_size="constant:0.1",
                                seed=0)

        first = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(10)
        )
        resumed = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(10),
            initial_weights=first.weights,
        )
        full = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(20)
        )
        # 10 + 10 resumed iterations land where 20 straight ones do.
        assert np.allclose(resumed.weights, full.weights)
        # The caller's array is copied, not aliased.
        first.weights[:] = 0.0
        assert np.any(resumed.weights != 0)

    def test_initial_weights_shape_mismatch_raises(
        self, spec, dataset, training
    ):
        with pytest.raises(PlanError):
            execute_plan(
                fresh_engine(spec), dataset, GDPlan("bgd"), training,
                initial_weights=np.zeros(dataset.stats.d + 1),
            )


def feed(monitor, deltas, per_iteration_s=1.0):
    """Push a synthetic delta sequence through a monitor."""
    stopped = None
    for i, delta in enumerate(deltas, start=1):
        if monitor.on_iteration(i, delta, i * per_iteration_s):
            stopped = i
            break
    return stopped


class TestConvergenceMonitor:
    def settings(self, **overrides):
        base = dict(refit_every=5, min_points=5, divergence_factor=2.0,
                    cost_divergence_factor=2.0)
        base.update(overrides)
        return AdaptiveSettings(**base)

    def test_accurate_curve_does_not_trigger(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=1000,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Observed errors exactly on the speculated curve, cost as
        # predicted: nothing fires in 100 iterations.
        deltas = [1.0 / i for i in range(1, 101)]
        assert feed(monitor, deltas) is None
        assert not monitor.diverged

    def test_mis_speculated_curve_triggers(self):
        # Speculation promised 1/i decay; reality is stuck at ~0.5.
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=1000,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        stopped = feed(monitor, [0.5] * 100)
        assert stopped is not None
        assert monitor.diverged
        assert monitor.curve_diverged
        assert "speculated curve" in monitor.reason

    def test_iteration_overrun_triggers(self):
        # Degenerate but confident curve; T(eps) said 10 iterations.
        curve = FittedCurve("inverse", (0.05,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=5e-3,
            speculated_curve=curve,
            predicted_iterations=10,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Errors follow the promised curve closely enough not to fire the
        # error-space check, yet convergence never happens.
        stopped = feed(monitor, [0.05 / i for i in range(1, 101)])
        assert stopped is not None
        assert stopped > 2 * 10
        assert monitor.curve_diverged
        assert "past the speculated" in monitor.reason

    def test_cost_divergence_triggers_without_curve(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Observed 4 s/iteration vs predicted 1 s.
        stopped = feed(monitor, [1.0 / i for i in range(1, 101)],
                       per_iteration_s=4.0)
        assert stopped is not None
        assert monitor.diverged
        assert not monitor.curve_diverged
        assert "cost" in monitor.reason

    def test_accurate_cost_does_not_trigger(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        assert feed(monitor, [1.0 / i for i in range(1, 101)]) is None

    def test_min_points_gate(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(min_points=50),
        )
        # Diverged cost, but fewer than min_points observations.
        assert feed(monitor, [0.5] * 40, per_iteration_s=10.0) is None

    def test_noisy_refit_is_discarded(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=10,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        rng = np.random.default_rng(0)
        # Pure noise: overrun fires eventually, but the garbage refit
        # must not be kept as a trusted curve.
        feed(monitor, list(rng.uniform(0.3, 0.7, size=100)))
        assert monitor.diverged
        assert monitor.refit_curve is None or \
            monitor.refit_curve.r2 >= monitor.settings.min_refit_r2


class TestMonitorIterationOffset:
    """Post-switch segments compare the error-space check at the global
    iteration, not the segment-local one (the speculated curve describes
    decay from scratch)."""

    def monitor(self, offset):
        # error(i) = 2/i^3 reaches the 1e-3 target around i = 13.
        curve = FittedCurve("power", (2.0, 3.0), 0.99, 50)
        return ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=1000,
            predicted_per_iteration_s=1.0,
            settings=AdaptiveSettings(refit_every=8, min_points=8,
                                      divergence_factor=2.0),
            iteration_offset=offset,
        )

    def test_segment_local_indices_fire_spuriously(self):
        # Healthy post-switch plateau just above target: comparing it
        # against the from-scratch curve at *local* indices calls it a
        # 2x+ miss.  This is the pre-fix behaviour (offset 0 is correct
        # only for a first segment, which genuinely starts at scratch).
        stopped = feed(self.monitor(0), [3e-3] * 16)
        assert stopped == 16

    def test_global_indices_do_not_fire(self):
        # Offset by the 40 iterations already completed, the curve has
        # decayed below the target at every compared position; the
        # error-space check correctly stands down (the overrun check
        # owns the endgame).
        monitor = self.monitor(40)
        assert feed(monitor, [3e-3] * 40) is None
        assert not monitor.diverged

    def test_offset_does_not_blind_the_overrun_check(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=FittedCurve("power", (2.0, 3.0), 0.99, 50),
            predicted_iterations=10,   # remaining-budget prediction
            predicted_per_iteration_s=1.0,
            settings=AdaptiveSettings(refit_every=8, min_points=8,
                                      divergence_factor=2.0),
            iteration_offset=40,
        )
        stopped = feed(monitor, [3e-3] * 64)
        assert stopped is not None
        assert monitor.curve_diverged
        assert "past the speculated" in monitor.reason


class TestTraceForwardCompatibility:
    """Traces written by a newer format must load on older-shaped
    readers: unknown keys are ignored, not TypeErrors."""

    def segment_payload(self):
        return dict(
            plan="SGD-lazy-shuffle", algorithm="sgd",
            predicted_iterations=100, predicted_per_iteration_s=0.1,
            predicted_total_s=10.0, iterations=50, sim_seconds=5.0,
        )

    def test_plan_segment_tolerates_unknown_keys(self):
        from repro.runtime import PlanSegment

        payload = self.segment_payload()
        payload["a_future_field"] = {"nested": [1, 2]}
        segment = PlanSegment.from_dict(payload)
        assert segment.plan == "SGD-lazy-shuffle"
        assert segment.iterations == 50

    def test_switch_event_tolerates_unknown_keys(self):
        from repro.runtime import SwitchEvent

        event = SwitchEvent.from_dict({
            "iteration": 40, "from_plan": "a", "to_plan": "b",
            "reason": "because", "clock": 1.0,
            "carried_state_summary": "whatever a v3 writer adds",
        })
        assert event.iteration == 40

    def test_trace_round_trip_carries_format_and_state(self, spec,
                                                       dataset, training):
        from repro.runtime import TRACE_FORMAT, ExecutionTrace
        import json

        engine = fresh_engine(spec)
        result = execute_plan(engine, dataset, GDPlan("bgd"), training)
        from repro.runtime import segment_from_result
        from repro.core.result import PlanCostEstimate

        estimate = PlanCostEstimate(
            plan=GDPlan("bgd"), estimated_iterations=10, one_time_s=1.0,
            per_iteration_s=0.1, total_s=2.0, breakdown={},
        )
        trace = ExecutionTrace(workload="w", cluster_signature="c",
                               tolerance=1e-3)
        trace.segments.append(segment_from_result(
            result, estimate, state_transfer=["offset carried"],
        ))
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["trace_format"] == TRACE_FORMAT
        restored = ExecutionTrace.from_dict(payload)
        assert restored.segments[0].state["iteration_offset"] == \
            result.iterations
        assert restored.segments[0].state_transfer == ["offset carried"]
