"""Executor telemetry hooks and the runtime monitors."""

import numpy as np
import pytest

from repro.core.curve_fit import FittedCurve
from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError
from repro.runtime import (
    AdaptiveSettings,
    ConvergenceMonitor,
    TelemetryRecorder,
)

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=300, d=8, task="logreg", spec=spec, seed=2)


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-4, max_iter=40, seed=0)


def fresh_engine(spec):
    from repro.cluster import SimulatedCluster

    return SimulatedCluster(spec, seed=0)


class TestExecutorMonitorHook:
    def test_monitor_sees_every_iteration(self, spec, dataset, training):
        recorder = TelemetryRecorder()
        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=recorder,
        )
        assert recorder.iterations == result.iterations
        assert recorder.deltas == pytest.approx(list(result.deltas))
        # Clocks are monotone non-decreasing across records.
        clocks = [r.clock for r in recorder.records]
        assert clocks == sorted(clocks)

    def test_attaching_a_recorder_is_behaviour_preserving(
        self, spec, dataset, training
    ):
        bare = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training
        )
        observed = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=TelemetryRecorder(),
        )
        assert np.array_equal(bare.weights, observed.weights)
        assert bare.sim_seconds == observed.sim_seconds
        assert bare.iterations == observed.iterations
        assert not observed.stopped_by_monitor

    def test_stop_request_is_honoured_gracefully(
        self, spec, dataset, training
    ):
        class StopAt:
            def __init__(self, at):
                self.at = at

            def on_iteration(self, iteration, delta, clock):
                return iteration >= self.at

        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=StopAt(7),
        )
        assert result.stopped_by_monitor
        assert result.iterations == 7
        assert not result.converged
        # Model state survives the stop.
        assert result.weights.shape == (dataset.stats.d,)
        assert np.any(result.weights != 0)

    def test_convergence_wins_over_stop_request(self, spec, dataset):
        class AlwaysStop:
            def on_iteration(self, iteration, delta, clock):
                return True

        training = TrainingSpec(
            task="logreg", tolerance=1e9, max_iter=40, seed=0
        )
        result = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), training,
            monitor=AlwaysStop(),
        )
        assert result.converged
        assert not result.stopped_by_monitor

    def test_initial_weights_resume_training(self, spec, dataset, training):
        # Constant step: resuming is then exactly equivalent to having
        # run straight through (schedules restart per segment by design).
        def spec_kwargs(max_iter):
            return TrainingSpec(task="logreg", tolerance=1e-4,
                                max_iter=max_iter, step_size="constant:0.1",
                                seed=0)

        first = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(10)
        )
        resumed = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(10),
            initial_weights=first.weights,
        )
        full = execute_plan(
            fresh_engine(spec), dataset, GDPlan("bgd"), spec_kwargs(20)
        )
        # 10 + 10 resumed iterations land where 20 straight ones do.
        assert np.allclose(resumed.weights, full.weights)
        # The caller's array is copied, not aliased.
        first.weights[:] = 0.0
        assert np.any(resumed.weights != 0)

    def test_initial_weights_shape_mismatch_raises(
        self, spec, dataset, training
    ):
        with pytest.raises(PlanError):
            execute_plan(
                fresh_engine(spec), dataset, GDPlan("bgd"), training,
                initial_weights=np.zeros(dataset.stats.d + 1),
            )


def feed(monitor, deltas, per_iteration_s=1.0):
    """Push a synthetic delta sequence through a monitor."""
    stopped = None
    for i, delta in enumerate(deltas, start=1):
        if monitor.on_iteration(i, delta, i * per_iteration_s):
            stopped = i
            break
    return stopped


class TestConvergenceMonitor:
    def settings(self, **overrides):
        base = dict(refit_every=5, min_points=5, divergence_factor=2.0,
                    cost_divergence_factor=2.0)
        base.update(overrides)
        return AdaptiveSettings(**base)

    def test_accurate_curve_does_not_trigger(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=1000,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Observed errors exactly on the speculated curve, cost as
        # predicted: nothing fires in 100 iterations.
        deltas = [1.0 / i for i in range(1, 101)]
        assert feed(monitor, deltas) is None
        assert not monitor.diverged

    def test_mis_speculated_curve_triggers(self):
        # Speculation promised 1/i decay; reality is stuck at ~0.5.
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=1000,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        stopped = feed(monitor, [0.5] * 100)
        assert stopped is not None
        assert monitor.diverged
        assert monitor.curve_diverged
        assert "speculated curve" in monitor.reason

    def test_iteration_overrun_triggers(self):
        # Degenerate but confident curve; T(eps) said 10 iterations.
        curve = FittedCurve("inverse", (0.05,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=5e-3,
            speculated_curve=curve,
            predicted_iterations=10,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Errors follow the promised curve closely enough not to fire the
        # error-space check, yet convergence never happens.
        stopped = feed(monitor, [0.05 / i for i in range(1, 101)])
        assert stopped is not None
        assert stopped > 2 * 10
        assert monitor.curve_diverged
        assert "past the speculated" in monitor.reason

    def test_cost_divergence_triggers_without_curve(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        # Observed 4 s/iteration vs predicted 1 s.
        stopped = feed(monitor, [1.0 / i for i in range(1, 101)],
                       per_iteration_s=4.0)
        assert stopped is not None
        assert monitor.diverged
        assert not monitor.curve_diverged
        assert "cost" in monitor.reason

    def test_accurate_cost_does_not_trigger(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        assert feed(monitor, [1.0 / i for i in range(1, 101)]) is None

    def test_min_points_gate(self):
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=None,
            predicted_iterations=None,
            predicted_per_iteration_s=1.0,
            settings=self.settings(min_points=50),
        )
        # Diverged cost, but fewer than min_points observations.
        assert feed(monitor, [0.5] * 40, per_iteration_s=10.0) is None

    def test_noisy_refit_is_discarded(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        monitor = ConvergenceMonitor(
            target_tolerance=1e-3,
            speculated_curve=curve,
            predicted_iterations=10,
            predicted_per_iteration_s=1.0,
            settings=self.settings(),
        )
        rng = np.random.default_rng(0)
        # Pure noise: overrun fires eventually, but the garbage refit
        # must not be kept as a trusted curve.
        feed(monitor, list(rng.uniform(0.3, 0.7, size=100)))
        assert monitor.diverged
        assert monitor.refit_curve is None or \
            monitor.refit_curve.r2 >= monitor.settings.min_refit_r2
