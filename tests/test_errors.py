"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConstraintError,
    DataFormatError,
    EstimationError,
    PlanError,
    QueryError,
    ReproError,
    SimulatedOutOfMemory,
    SimulatedPlatformError,
    SimulatedTimeout,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        QueryError, PlanError, ConstraintError, EstimationError,
        SimulatedPlatformError, DataFormatError,
    ])
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_simulated_failures_group(self):
        assert issubclass(SimulatedOutOfMemory, SimulatedPlatformError)
        assert issubclass(SimulatedTimeout, SimulatedPlatformError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise PlanError("nope")


class TestMessages:
    def test_query_error_position(self):
        err = QueryError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert "column 7" in str(err)
        assert err.line == 3

    def test_query_error_line_only(self):
        err = QueryError("bad", line=2)
        assert "line 2" in str(err)

    def test_constraint_error_names_constraint(self):
        err = ConstraintError("time", "needs 2h, budget 1h")
        assert err.constraint == "time"
        assert "time" in str(err)

    def test_oom_carries_sizes(self):
        err = SimulatedOutOfMemory("SystemML", 10, 5)
        assert err.system == "SystemML"
        assert err.needed_bytes == 10
        assert "SystemML" in str(err)

    def test_timeout_carries_times(self):
        err = SimulatedTimeout("MLlib", 10800.0, 10000.0)
        assert err.elapsed_s == 10800.0
        assert "MLlib" in str(err)
