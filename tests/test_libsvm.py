"""Unit tests for LIBSVM-format IO."""

import io

import numpy as np
import pytest
from scipy import sparse as sp

from repro.data.libsvm import parse_libsvm_line, read_libsvm, write_libsvm
from repro.errors import DataFormatError


class TestParseLine:
    def test_basic_line(self):
        # The exact data unit from Figure 3(a).
        label, idx, vals = parse_libsvm_line("+1 2:0.1 4:0.4 10:0.3")
        assert label == 1.0
        assert idx == [1, 3, 9]  # converted to 0-based
        assert vals == [0.1, 0.4, 0.3]

    def test_negative_label(self):
        label, _, _ = parse_libsvm_line("-1 3:0.3")
        assert label == -1.0

    def test_empty_features(self):
        label, idx, vals = parse_libsvm_line("1")
        assert label == 1.0
        assert idx == []

    def test_trailing_comment(self):
        label, idx, _ = parse_libsvm_line("1 1:2.0 # a comment")
        assert idx == [0]

    def test_unsorted_indices_normalised(self):
        _, idx, vals = parse_libsvm_line("1 5:5.0 2:2.0")
        assert idx == [1, 4]
        assert vals == [2.0, 5.0]

    def test_bad_label(self):
        with pytest.raises(DataFormatError):
            parse_libsvm_line("spam 1:1")

    def test_bad_entry(self):
        with pytest.raises(DataFormatError):
            parse_libsvm_line("1 notanentry")

    def test_zero_index_rejected(self):
        with pytest.raises(DataFormatError):
            parse_libsvm_line("1 0:1.0")

    def test_empty_line_rejected(self):
        with pytest.raises(DataFormatError):
            parse_libsvm_line("   ")


class TestReadWrite:
    def test_read_from_lines(self):
        text = "+1 1:1.0 3:2.0\n-1 2:0.5\n"
        X, y = read_libsvm(io.StringIO(text))
        assert X.shape == (2, 3)
        np.testing.assert_array_equal(y, [1.0, -1.0])
        assert X[0, 0] == 1.0
        assert X[0, 2] == 2.0
        assert X[1, 1] == 0.5

    def test_blank_and_comment_lines_skipped(self):
        text = "# header\n\n+1 1:1.0\n\n-1 1:2.0\n"
        X, y = read_libsvm(io.StringIO(text))
        assert X.shape[0] == 2

    def test_n_features_override(self):
        X, _ = read_libsvm(io.StringIO("1 2:1.0\n"), n_features=10)
        assert X.shape == (1, 10)

    def test_n_features_too_small(self):
        with pytest.raises(DataFormatError):
            read_libsvm(io.StringIO("1 5:1.0\n"), n_features=3)

    def test_empty_input(self):
        with pytest.raises(DataFormatError):
            read_libsvm(io.StringIO(""))

    def test_roundtrip_dense_matrix(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 8))
        X[np.abs(X) < 0.5] = 0.0
        y = np.where(rng.random(20) < 0.5, 1.0, -1.0)
        path = str(tmp_path / "data.txt")
        write_libsvm(path, X, y, precision=12)
        X2, y2 = read_libsvm(path, n_features=8)
        np.testing.assert_allclose(X2.toarray(), X, atol=1e-9)
        np.testing.assert_array_equal(y2, y)

    def test_roundtrip_sparse_matrix(self, tmp_path):
        X = sp.random(30, 15, density=0.2, format="csr",
                      random_state=np.random.RandomState(1))
        y = np.arange(30, dtype=float)
        path = str(tmp_path / "sparse.txt")
        write_libsvm(path, X, y, precision=12)
        X2, y2 = read_libsvm(path, n_features=15)
        np.testing.assert_allclose(X2.toarray(), X.toarray(), atol=1e-9)
        np.testing.assert_array_equal(y2, y)

    def test_write_mismatched_shapes(self):
        with pytest.raises(DataFormatError):
            write_libsvm(io.StringIO(), np.zeros((3, 2)), np.zeros(4))

    def test_write_integer_labels_formatted_plain(self):
        buf = io.StringIO()
        write_libsvm(buf, np.array([[1.5]]), np.array([1.0]))
        assert buf.getvalue().startswith("1 ")

    def test_read_file_path(self, tmp_path):
        path = str(tmp_path / "f.txt")
        with open(path, "w") as f:
            f.write("1 1:3.0\n")
        X, y = read_libsvm(path)
        assert X[0, 0] == 3.0
