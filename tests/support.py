"""Importable test helpers.

Lives outside ``conftest.py`` so test modules can ``from support import
make_dataset`` regardless of which ``conftest`` module pytest registered
first (running from the repo root used to import ``benchmarks/conftest.py``
under the top-level name ``conftest``, breaking every ``from conftest
import ...`` in this directory).  Named ``support`` -- not ``_helpers``
-- so it can never race ``benchmarks/_helpers.py`` for a top-level
module name either.
"""

import random

import numpy as np

from repro.cluster import ClusterSpec, PartitionedDataset
from repro.cluster.storage import DatasetStats
from repro.data import make_classification, make_regression
from repro.service.backends import CacheBackend


def make_dataset(
    n_phys=200,
    d=10,
    sim_n=None,
    spec=None,
    task="logreg",
    representation="text",
    seed=0,
    sparse=False,
    block_bytes=None,
    **gen_kwargs,
):
    """Build a small PartitionedDataset for tests.

    ``sim_n`` (default: n_phys) sets the simulated row count;
    ``block_bytes`` optionally overrides the HDFS block size so tests can
    force a specific partition count.
    """
    spec = spec or ClusterSpec(jitter_sigma=0.0)
    if block_bytes is not None:
        spec = spec.with_overrides(hdfs_block_bytes=block_bytes)
    rng = np.random.default_rng(seed)
    if task == "linreg":
        X, y, _ = make_regression(n_phys, d, sparse=sparse, rng=rng, **gen_kwargs)
    else:
        X, y, _ = make_classification(
            n_phys, d, sparse=sparse, rng=rng, **gen_kwargs
        )
    stats = DatasetStats(
        name="test",
        task=task,
        n=sim_n or n_phys,
        d=d,
        density=gen_kwargs.get("density", 1.0),
        is_sparse=sparse,
    )
    return PartitionedDataset(X, y, stats, spec, representation=representation)


class FaultyBackend(CacheBackend):
    """A :class:`CacheBackend` wrapper that injects faults on a schedule.

    Wraps *any* real backend and makes selected operations fail the way
    flaky storage fails, so tests can exercise degradation and retry
    paths against the genuine backend underneath rather than a mock:

    * ``"timeout"`` -- raise :class:`TimeoutError` *before* the
      operation runs (nothing happened on the inner backend);
    * ``"reset"`` -- raise :class:`ConnectionResetError` before the
      operation runs (ditto);
    * ``"fail_after_write"`` -- run the operation on the inner backend
      first, *then* raise :class:`ConnectionResetError`.  This is the
      partial-failure case -- the write landed but the caller never
      heard back -- that idempotent retry (CAS txn replay) must handle.
      On read-only operations it degrades to ``"reset"``.

    Faults come from an explicit per-operation ``plan`` (a dict mapping
    operation name to a list of fault kinds / ``None``, consumed one
    entry per call, then clean) or -- when ``seed`` is given -- from a
    seeded :class:`random.Random` firing with probability ``rate`` on
    each operation in ``ops``.  The same seed always yields the same
    fault sequence.  Every injected fault is recorded in ``injected``
    as an ``(operation, kind)`` pair so tests can assert the schedule
    actually fired.
    """

    #: Fault kinds raised *before* the inner operation runs.
    ABORT_KINDS = ("timeout", "reset")
    KINDS = ABORT_KINDS + ("fail_after_write",)

    def __init__(self, inner, plan=None, seed=None, rate=0.2,
                 kinds=KINDS, ops=("get", "store", "update", "delete")):
        self.inner = inner
        self.plan = {op: list(queue) for op, queue in (plan or {}).items()}
        self.rng = None if seed is None else random.Random(seed)
        self.rate = rate
        self.kinds = tuple(kinds)
        self.ops = frozenset(ops)
        self.injected = []

    # -- fault scheduling ------------------------------------------------
    def _next_fault(self, op):
        queue = self.plan.get(op)
        if queue:
            return queue.pop(0)
        if self.rng is not None and op in self.ops:
            if self.rng.random() < self.rate:
                return self.rng.choice(self.kinds)
        return None

    def _raise(self, op, kind):
        self.injected.append((op, kind))
        if kind == "timeout":
            raise TimeoutError(f"injected timeout during {op}")
        raise ConnectionResetError(f"injected reset during {op}")

    def _call(self, op, fn, mutates):
        kind = self._next_fault(op)
        if kind in self.ABORT_KINDS:
            self._raise(op, kind)
        if kind == "fail_after_write" and not mutates:
            kind = "reset"
            self._raise(op, kind)
        result = fn()
        if kind == "fail_after_write":
            self._raise(op, kind)
        return result

    # -- CacheBackend contract ------------------------------------------
    def load(self):
        return self._call("load", self.inner.load, mutates=False)

    def get(self, key):
        return self._call("get", lambda: self.inner.get(key), mutates=False)

    def store(self, key, entry):
        return self._call(
            "store", lambda: self.inner.store(key, entry), mutates=True
        )

    def update(self, key, fn):
        return self._call(
            "update", lambda: self.inner.update(key, fn), mutates=True
        )

    def replace(self, entries):
        return self._call(
            "replace", lambda: self.inner.replace(entries), mutates=True
        )

    def mutate_all(self, fn):
        return self._call(
            "mutate_all", lambda: self.inner.mutate_all(fn), mutates=True
        )

    def delete(self, key):
        return self._call(
            "delete", lambda: self.inner.delete(key), mutates=True
        )

    def clear(self):
        return self._call("clear", self.inner.clear, mutates=True)

    def close(self):
        self.inner.close()

    def __len__(self):
        return len(self.inner)
