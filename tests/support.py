"""Importable test helpers.

Lives outside ``conftest.py`` so test modules can ``from support import
make_dataset`` regardless of which ``conftest`` module pytest registered
first (running from the repo root used to import ``benchmarks/conftest.py``
under the top-level name ``conftest``, breaking every ``from conftest
import ...`` in this directory).  Named ``support`` -- not ``_helpers``
-- so it can never race ``benchmarks/_helpers.py`` for a top-level
module name either.
"""

import numpy as np

from repro.cluster import ClusterSpec, PartitionedDataset
from repro.cluster.storage import DatasetStats
from repro.data import make_classification, make_regression


def make_dataset(
    n_phys=200,
    d=10,
    sim_n=None,
    spec=None,
    task="logreg",
    representation="text",
    seed=0,
    sparse=False,
    block_bytes=None,
    **gen_kwargs,
):
    """Build a small PartitionedDataset for tests.

    ``sim_n`` (default: n_phys) sets the simulated row count;
    ``block_bytes`` optionally overrides the HDFS block size so tests can
    force a specific partition count.
    """
    spec = spec or ClusterSpec(jitter_sigma=0.0)
    if block_bytes is not None:
        spec = spec.with_overrides(hdfs_block_bytes=block_bytes)
    rng = np.random.default_rng(seed)
    if task == "linreg":
        X, y, _ = make_regression(n_phys, d, sparse=sparse, rng=rng, **gen_kwargs)
    else:
        X, y, _ = make_classification(
            n_phys, d, sparse=sparse, rng=rng, **gen_kwargs
        )
    stats = DatasetStats(
        name="test",
        task=task,
        n=sim_n or n_phys,
        d=d,
        density=gen_kwargs.get("density", 1.0),
        is_sparse=sparse,
    )
    return PartitionedDataset(X, y, stats, spec, representation=representation)
