"""Cross-module property-based tests on core invariants.

These exercise the relationships that make the cost-based optimizer
sound: cost monotonicity in data size and iterations, estimator
consistency under tolerance tightening, sampler uniformity, and the
executor's accounting identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, SimulatedCluster, make_sampler
from repro.cluster.storage import DatasetStats
from repro.core.cost_model import CostModel, layout_for
from repro.core.curve_fit import fit_error_sequence
from repro.core.plan_space import enumerate_plans
from repro.core.plans import GDPlan

from support import make_dataset

SPEC = ClusterSpec(jitter_sigma=0.0)


class TestCostMonotonicity:
    @given(
        n=st.integers(min_value=6_000_000, max_value=50_000_000),
        # factor >= 2.5 so wave growth dominates the <=1-partition
        # rounding jitter of the HDFS block layout.
        factor=st.floats(min_value=2.5, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_bgd_cost_monotone_in_cardinality_above_cap(self, n, factor):
        """Once the dataset spans more partitions than parallel slots,
        more data means more waves and a higher per-iteration cost.
        (Below the cap, extra partitions *add parallelism*, so total time
        can legitimately drop as data grows -- real Spark behaviour.)"""
        model = CostModel(SPEC)
        small = DatasetStats("a", "svm", n=n, d=50)
        large = DatasetStats("a", "svm", n=int(n * factor), d=50)
        assert layout_for(SPEC, small, "binary").p >= SPEC.cap
        plan = GDPlan("bgd")
        cost_small = sum(model.per_iteration_cost(plan, small).values())
        cost_large = sum(model.per_iteration_cost(plan, large).values())
        assert cost_large >= cost_small * 0.999

    @given(d=st.integers(min_value=2, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_update_cost_monotone_in_dimensionality(self, d):
        model = CostModel(SPEC)
        lo = DatasetStats("a", "svm", n=100_000, d=d)
        hi = DatasetStats("a", "svm", n=100_000, d=2 * d)
        plan = GDPlan("bgd")
        assert model.per_iteration_cost(plan, hi)["update"] >= \
            model.per_iteration_cost(plan, lo)["update"]

    @given(n=st.integers(min_value=10_000, max_value=10_000_000))
    @settings(max_examples=20, deadline=None)
    def test_sgd_per_iteration_nearly_size_independent(self, n):
        """Section 2: SGD's per-iteration cost is O(1) in dataset size."""
        model = CostModel(SPEC)
        plan = GDPlan("sgd", "lazy", "shuffle")
        small = DatasetStats("a", "svm", n=n, d=50)
        large = DatasetStats("a", "svm", n=100 * n, d=50)
        c_small = sum(model.per_iteration_cost(plan, small).values())
        c_large = sum(model.per_iteration_cost(plan, large).values())
        assert c_large <= c_small * 3  # amortised shuffle may differ a bit

    @given(data_seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_every_plan_has_positive_cost(self, data_seed):
        model = CostModel(SPEC)
        stats = DatasetStats("a", "svm", n=1_000_000 + data_seed, d=30)
        for plan in enumerate_plans():
            one, per, total, _ = model.estimate(plan, stats, 10)
            assert per > 0
            assert total >= one >= 0


class TestEstimatorProperties:
    @given(
        a=st.floats(min_value=0.5, max_value=50),
        p=st.floats(min_value=0.4, max_value=1.6),
    )
    @settings(max_examples=30, deadline=None)
    def test_tighter_tolerance_never_fewer_iterations(self, a, p):
        errors = a / np.arange(1, 60) ** p
        curve = fit_error_sequence(errors, model="power")
        tolerances = [0.1, 0.05, 0.01, 0.005, 0.001]
        estimates = [curve.iterations_for(t) for t in tolerances]
        assert estimates == sorted(estimates)

    @given(scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_fit_scale_equivariance(self, scale):
        """Scaling the error sequence scales a, not the exponent."""
        base = 2.0 / np.arange(1, 50) ** 0.8
        c1 = fit_error_sequence(base, model="power")
        c2 = fit_error_sequence(base * scale, model="power")
        assert c2.params[1] == pytest.approx(c1.params[1], rel=1e-6)
        assert c2.params[0] == pytest.approx(c1.params[0] * scale, rel=1e-6)


class TestSamplerProperties:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_bernoulli_indices_always_valid(self, seed):
        ds = make_dataset(n_phys=97, d=4, sim_n=9_700, spec=SPEC)
        engine = SimulatedCluster(SPEC, seed=seed)
        sampler = make_sampler("bernoulli", engine, ds, 50)
        for _ in range(5):
            draw = sampler.draw()
            assert len(draw.indices) >= 1
            assert draw.indices.min() >= 0
            assert draw.indices.max() < 97

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_random_partition_roughly_uniform_over_rows(self, seed):
        ds = make_dataset(n_phys=400, d=4, sim_n=400_000, spec=SPEC,
                          block_bytes=64 * 1024)
        engine = SimulatedCluster(SPEC, seed=seed)
        sampler = make_sampler("random", engine, ds, 20)
        counts = np.zeros(400)
        for _ in range(60):
            counts[sampler.draw().indices] += 1
        # Every quartile of the row space gets sampled.
        quartiles = counts.reshape(4, 100).sum(axis=1)
        assert np.all(quartiles > 0)

    @given(batch=st.integers(min_value=1, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_shuffle_sim_accounting(self, batch):
        ds = make_dataset(n_phys=300, d=4, sim_n=30_000, spec=SPEC)
        engine = SimulatedCluster(SPEC, seed=1)
        sampler = make_sampler("shuffle", engine, ds, batch)
        draw = sampler.draw()
        assert 1 <= draw.sim_size <= max(batch, 1)
        assert len(draw.indices) <= 300


class TestLayoutInvariants:
    @given(
        n=st.integers(min_value=100, max_value=100_000_000),
        d=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitions_hold_all_units(self, n, d):
        stats = DatasetStats("a", "svm", n=n, d=min(d, 1000))
        layout = layout_for(SPEC, stats, "binary")
        assert layout.p >= 1
        assert layout.k * layout.p >= layout.n
        assert layout.partition_bytes * layout.p >= layout.bytes_total
