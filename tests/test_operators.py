"""Unit tests for the seven GD operators and reference implementations."""

import numpy as np
import pytest

from repro.core.context import Context
from repro.core.operators import GDOperators
from repro.core.reference_ops import (
    DefaultStage,
    FixedSizeSample,
    GradientCompute,
    L1Converge,
    ParseTransform,
    SVRGCompute,
    SVRGStage,
    SVRGUpdate,
    ToleranceLoop,
    WeightUpdate,
    default_operators,
    svrg_operators,
)
from repro.errors import PlanError
from repro.gd.gradients import LinearRegressionGradient, LogisticGradient


@pytest.fixture
def context():
    ctx = Context()
    DefaultStage(d=3, step_size="constant:0.5", tolerance=1e-3,
                 max_iter=10).stage(ctx)
    return ctx


class TestContext:
    def test_put_get(self):
        ctx = Context()
        ctx.put("weights", [1, 2])
        assert ctx.get("weights") == [1, 2]
        assert ctx.get("missing") is None
        assert ctx.get("missing", 7) == 7

    def test_require_raises(self):
        ctx = Context()
        with pytest.raises(PlanError):
            ctx.require("weights")

    def test_contains_and_keys(self):
        ctx = Context({"a": 1})
        assert "a" in ctx
        assert "b" not in ctx
        assert set(ctx.keys()) == {"a"}

    def test_as_dict_is_copy(self):
        ctx = Context({"a": 1})
        d = ctx.as_dict()
        d["a"] = 2
        assert ctx.get("a") == 1


class TestStage:
    def test_initialises_conventional_keys(self, context):
        # Listing 4: weights zeroed, step set, iteration counter zeroed.
        np.testing.assert_array_equal(context.require("weights"), np.zeros(3))
        assert context.require("iter") == 0
        assert context.require("tolerance") == 1e-3
        assert context.require("max_iter") == 10
        assert callable(context.require("step"))

    def test_passes_data_through(self):
        ctx = Context()
        stage = DefaultStage(d=2)
        sample = np.ones((5, 2))
        out = stage.stage(ctx, data_sample=sample)
        assert out is sample


class TestTransform:
    def test_identity_by_default(self, context):
        t = ParseTransform()
        X = np.ones((4, 3))
        y = np.ones(4)
        Xt, yt = t.transform(X, y, context)
        np.testing.assert_array_equal(Xt, X)

    def test_feature_scaling(self, context):
        t = ParseTransform(feature_scale=2.0)
        X = np.ones((4, 3))
        Xt, _ = t.transform(X, np.ones(4), context)
        np.testing.assert_array_equal(Xt, 2 * X)

    def test_invalid_scale(self):
        with pytest.raises(PlanError):
            ParseTransform(feature_scale=0.0)


class TestComputeUpdate:
    def test_compute_emits_sum_partial(self, context):
        g = LinearRegressionGradient()
        compute = GradientCompute(g)
        X = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        y = np.array([1.0, 2.0])
        partial, count = compute.compute(X, y, context)
        assert count == 2
        np.testing.assert_allclose(partial, g.gradient(np.zeros(3), X, y) * 2)

    def test_combine_adds_partials(self, context):
        g = LinearRegressionGradient()
        compute = GradientCompute(g)
        X = np.eye(3)
        y = np.array([1.0, 2.0, 3.0])
        full = compute.compute(X, y, context)
        a = compute.compute(X[:1], y[:1], context)
        b = compute.compute(X[1:], y[1:], context)
        combined = compute.combine(a, b)
        np.testing.assert_allclose(combined[0], full[0])
        assert combined[1] == full[1]

    def test_update_applies_step(self, context):
        context.put("iter", 1)
        update = WeightUpdate()
        grad_sum = np.array([2.0, 0.0, 0.0])
        w_new = update.update((grad_sum, 2), context)
        # w - 0.5 * mean_grad = 0 - 0.5 * [1,0,0]
        np.testing.assert_allclose(w_new, [-0.5, 0.0, 0.0])
        np.testing.assert_allclose(context.require("weights"), w_new)

    def test_update_rejects_empty_aggregate(self, context):
        context.put("iter", 1)
        with pytest.raises(PlanError):
            WeightUpdate().update((np.zeros(3), 0), context)


class TestSampleConvergeLoop:
    def test_sample_size(self, context):
        assert FixedSizeSample(100).sample_size(context) == 100
        with pytest.raises(PlanError):
            FixedSizeSample(0)

    def test_converge_l1_between_successive_updates(self, context):
        converge = L1Converge()
        first = converge.converge(np.zeros(3), context)
        assert first == float("inf")
        delta = converge.converge(np.array([1.0, -1.0, 0.0]), context)
        assert delta == pytest.approx(2.0)

    def test_loop_stops_on_tolerance(self, context):
        loop = ToleranceLoop()
        context.put("iter", 1)
        assert loop.should_continue(1.0, context)
        assert not loop.should_continue(1e-4, context)

    def test_loop_stops_on_max_iter(self, context):
        loop = ToleranceLoop()
        context.put("iter", 10)
        assert not loop.should_continue(1.0, context)


class TestBundles:
    def test_default_operators_with_sample(self):
        ops = default_operators(d=4, gradient=LogisticGradient(),
                                batch_size=10)
        assert ops.sample is not None
        assert len(ops.operators()) == 7

    def test_default_operators_bgd_without_sample(self):
        ops = default_operators(d=4, gradient=LogisticGradient())
        assert ops.sample is None
        assert len(ops.operators()) == 6

    def test_bundle_repr(self):
        ops = default_operators(d=2, gradient=LogisticGradient())
        assert "compute" in repr(ops)


class TestSVRGOperators:
    def test_anchor_iteration_emits_plain_gradient(self):
        ctx = Context()
        SVRGStage(d=2, step_size="constant:0.1").stage(ctx)
        ctx.put("iter", 1)  # (1 % m) - 1 == 0 -> anchor
        compute = SVRGCompute(LinearRegressionGradient(), update_frequency=5)
        X = np.array([[1.0, 0.0]])
        y = np.array([2.0])
        grad_sum, grad_bar, count, is_anchor = compute.compute(X, y, ctx)
        assert is_anchor
        assert count == 1
        np.testing.assert_array_equal(grad_bar, np.zeros(2))

    def test_stochastic_iteration_emits_pair(self):
        ctx = Context()
        SVRGStage(d=2, step_size="constant:0.1").stage(ctx)
        # Iteration 1 anchored (SVRGUpdate records the global anchor
        # iteration); iteration 2 is within the same anchor window.
        ctx.put("svrg_last_anchor", 1)
        ctx.put("iter", 2)
        compute = SVRGCompute(LinearRegressionGradient(), update_frequency=5)
        X = np.array([[1.0, 0.0]])
        y = np.array([2.0])
        out = compute.compute(X, y, ctx)
        assert not out[3]

    def test_unanchored_context_anchors_immediately(self):
        # A segment entered without SVRG state (e.g. after a plan
        # switch) recomputes its anchor on entry, whatever the local
        # iteration index.
        ctx = Context()
        SVRGStage(d=2, step_size="constant:0.1").stage(ctx)
        ctx.put("iter", 2)
        compute = SVRGCompute(LinearRegressionGradient(), update_frequency=5)
        out = compute.compute(np.array([[1.0, 0.0]]), np.array([2.0]), ctx)
        assert out[3]

    def test_update_anchor_sets_mu(self):
        ctx = Context()
        SVRGStage(d=2, step_size="constant:0.1").stage(ctx)
        ctx.put("iter", 1)
        update = SVRGUpdate()
        mu_partial = np.array([2.0, 0.0])
        update.update((mu_partial, np.zeros(2), 1, True), ctx)
        np.testing.assert_allclose(ctx.require("mu"), [2.0, 0.0])

    def test_svrg_bundle_has_anchor_marker(self):
        ops = svrg_operators(d=3, gradient=LinearRegressionGradient(),
                             update_frequency=7)
        assert ops.anchor_every == 7

    def test_bad_frequency(self):
        with pytest.raises(PlanError):
            SVRGCompute(LinearRegressionGradient(), update_frequency=1)


class TestEndToEndOperatorLoop:
    def test_manual_loop_converges(self):
        """Drive the seven operators by hand, mirroring Figure 3(a)."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        w_star = np.array([1.0, -1.0, 0.5])
        y = X @ w_star
        ops = default_operators(
            d=3, gradient=LinearRegressionGradient(),
            step_size="constant:0.1", tolerance=1e-6, max_iter=3000,
        )
        ctx = Context()
        ops.stage.stage(ctx)
        X, y = ops.transform.transform(X, y, ctx)
        ops.converge.converge(ctx.require("weights"), ctx)
        for i in range(1, 3001):
            ctx.put("iter", i)
            partial = ops.compute.compute(X, y, ctx)
            w = ops.update.update(partial, ctx)
            delta = ops.converge.converge(w, ctx)
            if not ops.loop.should_continue(delta, ctx):
                break
        np.testing.assert_allclose(ctx.require("weights"), w_star, atol=1e-3)
