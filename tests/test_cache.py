"""Unit tests for the Spark-like cache manager."""

import pytest

from repro.cluster import CacheManager

from support import make_dataset


class TestCacheManager:
    def test_insert_fully_cached(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes * 2)
        fraction = cache.insert(ds)
        assert fraction == 1.0
        assert cache.cached_fraction(ds) == 1.0

    def test_insert_partially_cached(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes // 2)
        fraction = cache.insert(ds)
        assert 0 < fraction < 1
        assert cache.cached_fraction(ds) == pytest.approx(fraction)

    def test_memory_overhead_inflates_footprint(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(int(ds.total_bytes * 1.5))
        assert cache.insert(ds) == 1.0
        cache.clear()
        assert cache.insert(ds, memory_overhead=2.0) < 1.0

    def test_zero_capacity_caches_nothing(self):
        ds = make_dataset(n_phys=50, d=5)
        cache = CacheManager(0)
        assert cache.insert(ds) == 0.0
        assert cache.cached_fraction(ds) == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheManager(-1)

    def test_lru_eviction(self):
        a = make_dataset(n_phys=100, d=5, seed=1)
        b = make_dataset(n_phys=100, d=5, seed=2)
        c = make_dataset(n_phys=100, d=5, seed=3)
        cache = CacheManager(int(a.total_bytes * 2.2))
        cache.insert(a)
        cache.insert(b)
        # Touch a so b becomes least-recently-used.
        cache.touch(a)
        cache.insert(c)
        assert cache.cached_fraction(b) < 1.0
        assert cache.cached_fraction(a) == 1.0

    def test_evict_removes_entry(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes * 2)
        cache.insert(ds)
        cache.evict(ds)
        assert cache.cached_fraction(ds) == 0.0

    def test_text_and_binary_cached_independently(self):
        ds = make_dataset(n_phys=100, d=5)
        binary = ds.as_binary()
        cache = CacheManager(ds.total_bytes + binary.total_bytes + 10)
        cache.insert(ds)
        cache.insert(binary)
        assert cache.cached_fraction(ds) == 1.0
        assert cache.cached_fraction(binary) == 1.0

    def test_reinsert_updates_not_duplicates(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes * 3)
        cache.insert(ds)
        used_once = cache.used_bytes
        cache.insert(ds)
        assert cache.used_bytes == used_once

    def test_used_and_free_bytes(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes * 2)
        assert cache.free_bytes == cache.capacity_bytes
        cache.insert(ds)
        assert cache.used_bytes == ds.total_bytes
        assert cache.free_bytes == cache.capacity_bytes - ds.total_bytes

    def test_clear(self):
        ds = make_dataset(n_phys=100, d=5)
        cache = CacheManager(ds.total_bytes * 2)
        cache.insert(ds)
        cache.clear()
        assert cache.used_bytes == 0
