"""The AlgorithmSpec plugin seam: register(), kwargs policy, hooks.

The registry is the paper's "fully parameterized" search-space entry
point (Section 6): every layer consults one
:class:`~repro.gd.spec.AlgorithmSpec` instead of branching on names.
These tests pin the seam itself -- registration validation, the loud
dropped-kwargs policy, the cost/speculation/plan-variant hooks, and the
format-versioned ``OptimizerState`` migration.
"""

import dataclasses
import logging

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.cluster.storage import DatasetStats
from repro.core.cost_model import CostModel
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.plan_space import plans_for_algorithm
from repro.errors import PlanError
from repro.gd import registry as gd_registry
from repro.gd.gradients import LogisticGradient
from repro.gd.registry import ALGORITHMS, info, register, run
from repro.gd.spec import RUN_LOOP_KWARGS, AlgorithmSpec, CostTerms
from repro.gd.state import STATE_FORMAT, OptimizerState

BUILTIN = ("bgd", "mgd", "sgd", "svrg", "line_search",
           "momentum", "adagrad", "adam")


@pytest.fixture
def tiny():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(200, 4))
    w_star = rng.normal(size=4)
    y = np.where(X @ w_star > 0, 1.0, 0.0)
    return X, y, LogisticGradient()


def stats_for(n=100_000, d=50):
    return DatasetStats("x", "svm", n=n, d=d, density=1.0, is_sparse=False)


def _unregister(name):
    ALGORITHMS.pop(name, None)


class TestRegister:
    def test_register_returns_the_spec(self):
        spec = AlgorithmSpec("tmp_alg", 32, True, "test algorithm")
        try:
            assert register(spec) is spec
            assert info("tmp_alg") is spec
        finally:
            _unregister("tmp_alg")

    def test_duplicate_name_is_refused(self):
        with pytest.raises(PlanError, match="already registered"):
            register(AlgorithmSpec("bgd", None, False, "impostor"))

    def test_replace_true_overrides(self):
        try:
            register(AlgorithmSpec("tmp_alg", 32, True, "v1"))
            register(AlgorithmSpec("tmp_alg", 64, True, "v2"), replace=True)
            assert info("tmp_alg").default_batch_size == 64
        finally:
            _unregister("tmp_alg")

    def test_non_spec_argument_is_refused(self):
        with pytest.raises(PlanError, match="AlgorithmSpec"):
            register({"name": "dictionary"})

    def test_foreign_state_namespace_is_refused(self):
        spec = AlgorithmSpec(
            "tmp_alg", 32, True, "namespace thief",
            state_namespace="svrg",
            transfer_state=lambda payload, target, notes: None,
        )
        with pytest.raises(PlanError, match="already owned"):
            register(spec)

    def test_transfer_policy_requires_namespace(self):
        with pytest.raises(PlanError):
            AlgorithmSpec("tmp_alg", 32, True, "policy sans namespace",
                          transfer_state=lambda p, t, notes: None)

    def test_driver_requires_accepted_kwargs(self):
        with pytest.raises(PlanError):
            AlgorithmSpec("tmp_alg", 32, True, "driver sans contract",
                          driver=lambda X, y, gradient: None)

    def test_unknown_algorithm_message_lists_registry(self):
        with pytest.raises(PlanError, match="unknown GD algorithm"):
            info("simulated_annealing")


class TestDroppedKwargs:
    @pytest.fixture(autouse=True)
    def _propagate_repro_logs(self):
        # configure_logging() (exercised elsewhere in the suite) turns
        # propagation off on the "repro" root logger; caplog captures at
        # the root handler, so restore propagation for these tests.
        logger = logging.getLogger("repro")
        saved = logger.propagate
        logger.propagate = True
        try:
            yield
        finally:
            logger.propagate = saved

    def test_dropped_kwargs_warn_on_repro_gd(self, tiny, caplog):
        X, y, gradient = tiny
        with caplog.at_level(logging.WARNING, logger="repro.gd"):
            run("svrg", X, y, gradient, max_iter=3, tolerance=0.0,
                updater=object(), record_loss=True)
        records = [r for r in caplog.records if r.name == "repro.gd"]
        assert len(records) == 1
        record = records[0]
        assert record.algorithm == "svrg"
        assert record.dropped_kwargs == ["record_loss", "updater"]
        assert "record_loss, updater" in record.getMessage()

    def test_accepted_kwargs_pass_silently(self, tiny, caplog):
        X, y, gradient = tiny
        with caplog.at_level(logging.WARNING, logger="repro.gd"):
            run("mgd", X, y, gradient, max_iter=3, tolerance=0.0,
                step_size=0.05)
        assert not [r for r in caplog.records if r.name == "repro.gd"]

    def test_run_loop_algorithms_default_to_loop_contract(self, tiny, caplog):
        X, y, gradient = tiny
        with caplog.at_level(logging.WARNING, logger="repro.gd"):
            run("adam", X, y, gradient, max_iter=3, tolerance=0.0,
                alpha0=0.5)
        records = [r for r in caplog.records if r.name == "repro.gd"]
        assert len(records) == 1
        assert records[0].dropped_kwargs == ["alpha0"]
        assert "alpha0" not in RUN_LOOP_KWARGS


class TestCostTerms:
    def test_identity_by_default(self):
        assert CostTerms().is_identity()
        for name in BUILTIN:
            assert gd_registry.cost_terms(name).is_identity(), name

    def test_plugins_declare_corrections(self):
        assert not gd_registry.cost_terms("grad_avg").is_identity()
        assert not gd_registry.cost_terms("arc").is_identity()

    def test_invalid_terms_are_refused(self):
        with pytest.raises(PlanError):
            CostTerms(per_iteration_multiplier=0.0)
        with pytest.raises(PlanError):
            CostTerms(extra_update_cost_factor=-1.0)
        with pytest.raises(PlanError):
            CostTerms(full_pass_fraction=1.5)

    def test_builtin_costs_have_no_algorithm_phase(self):
        model = CostModel(ClusterSpec(jitter_sigma=0.0))
        stats = stats_for()
        for algorithm in ("bgd", "mgd", "sgd", "svrg"):
            for plan in plans_for_algorithm(algorithm):
                phases = model.per_iteration_cost(plan, stats)
                assert "algorithm" not in phases, plan

    def test_plugin_costs_show_algorithm_phase(self):
        model = CostModel(ClusterSpec(jitter_sigma=0.0))
        stats = stats_for()
        for algorithm in ("grad_avg", "arc"):
            plan = plans_for_algorithm(algorithm)[0]
            phases = model.per_iteration_cost(plan, stats)
            assert phases["algorithm"] > 0.0, algorithm

    def test_arc_prices_the_probe_passes(self):
        """Arc's periodic full passes make it pricier than plain SGD."""
        model = CostModel(ClusterSpec(jitter_sigma=0.0))
        stats = stats_for(n=1_000_000, d=50)
        arc = sum(model.per_iteration_cost(
            plans_for_algorithm("arc")[0], stats).values())
        sgd = sum(model.per_iteration_cost(
            plans_for_algorithm("sgd")[0], stats).values())
        assert arc > sgd

    def test_batch_estimates_match_scalar_with_corrections(self):
        model = CostModel(ClusterSpec(jitter_sigma=0.0))
        stats = stats_for()
        plans = []
        for algorithm in ("bgd", "mgd", "sgd", "grad_avg", "arc"):
            plans.extend(plans_for_algorithm(algorithm))
        batch = model.estimate_batch(plans, stats, [100] * len(plans))
        for i, plan in enumerate(plans):
            _, _, total_s, breakdown = model.estimate(plan, stats, 100)
            assert batch.total_s[i] == pytest.approx(total_s, rel=1e-9), plan
            assert batch.breakdown(i) == pytest.approx(breakdown), plan


class TestSpeculationOverrides:
    def test_default_is_empty(self):
        assert gd_registry.speculation_overrides("mgd") == {}

    def test_override_reaches_the_estimator(self, tiny):
        X, y, gradient = tiny
        spec = AlgorithmSpec(
            "tmp_spec_alg", 64, True, "speculation override probe",
            speculation_overrides={"max_speculation_iters": 7},
        )
        settings = SpeculationSettings(
            sample_size=200, speculation_tolerance=1e-12,
            time_budget_s=10.0, max_speculation_iters=50)
        try:
            register(spec)
            estimator = SpeculativeEstimator(settings, seed=11)
            base = estimator.estimate(X, y, gradient, "mgd",
                                      target_tolerance=1e-9, step_size=0.05,
                                      batch_size=64)
            boosted = estimator.estimate(X, y, gradient, "tmp_spec_alg",
                                         target_tolerance=1e-9,
                                         step_size=0.05, batch_size=64)
            assert base.speculation_iterations == 50
            assert boosted.speculation_iterations == 7
        finally:
            _unregister("tmp_spec_alg")


class TestPlanVariants:
    def test_default_variants_follow_stochasticity(self):
        bgd_plans = plans_for_algorithm("bgd")
        assert [(p.transform_mode, p.sampling) for p in bgd_plans] == [
            ("eager", None)]
        assert len(plans_for_algorithm("mgd")) == 5

    def test_spec_variants_win(self):
        spec = AlgorithmSpec(
            "tmp_variant_alg", 64, True, "restricted plan shape",
            plan_variants=(("eager", "shuffle"),),
        )
        try:
            register(spec)
            plans = plans_for_algorithm("tmp_variant_alg")
            assert [(p.transform_mode, p.sampling) for p in plans] == [
                ("eager", "shuffle")]
        finally:
            _unregister("tmp_variant_alg")

    def test_plugins_enumerate_like_paper_algorithms(self):
        for name in ("grad_avg", "arc"):
            plans = plans_for_algorithm(name)
            assert len(plans) == 5, name
            assert all(p.algorithm == name for p in plans)


class TestStateFormatMigration:
    def test_format_constant_is_two(self):
        assert STATE_FORMAT == 2

    def test_format1_payload_migrates(self):
        payload = {
            "state_format": 1,
            "iteration_offset": 40,
            "svrg": {"w_bar": [0.1], "mu": [0.2], "last_anchor": 30},
        }
        state = OptimizerState.from_dict(payload)
        assert state.algorithm_state == {
            "svrg": {"w_bar": [0.1], "mu": [0.2], "last_anchor": 30}}
        assert state.svrg == state.algorithm_state["svrg"]

    def test_format1_none_svrg_migrates_to_empty(self):
        state = OptimizerState.from_dict(
            {"state_format": 1, "iteration_offset": 7, "svrg": None})
        assert state.algorithm_state == {}
        assert state.svrg is None

    def test_round_trip_is_format2(self):
        state = OptimizerState(iteration_offset=3,
                               algorithm_state={"arc": {"phase": 2}})
        payload = state.to_dict()
        assert payload["state_format"] == 2
        assert OptimizerState.from_dict(payload).algorithm_state == {
            "arc": {"phase": 2}}

    def test_newer_format_is_refused(self):
        with pytest.raises(PlanError, match="newer than supported"):
            OptimizerState.from_dict(
                {"state_format": STATE_FORMAT + 1, "iteration_offset": 0})

    def test_unowned_namespace_drops_with_note(self):
        state = OptimizerState(iteration_offset=5,
                               algorithm_state={"mystery": {"x": 1}})
        out = state.transfer_to("mgd")
        assert out.algorithm_state == {}
        assert any("mystery state dropped" in note for note in out.notes)


class TestRegistryShape:
    def test_the_zoo(self):
        for name in BUILTIN + ("grad_avg", "arc"):
            assert name in ALGORITHMS

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            info("bgd").default_batch_size = 5

    def test_core_algorithms_unchanged(self):
        assert gd_registry.CORE_ALGORITHMS == ("bgd", "mgd", "sgd")

    def test_selector_for_respects_fixed_batch(self):
        rng = np.random.default_rng(0)
        fixed = gd_registry.selector_for("sgd", 100, batch_size=32)
        assert len(fixed(1, rng)) == 1
        sized = gd_registry.selector_for("mgd", 100, batch_size=32)
        assert len(sized(1, rng)) == 32
