"""The documentation suite holds: links resolve, snippets run.

Runs the same checker CI uses (``scripts/check_docs.py``), so drift
between the documented API and the real one fails tier-1 locally, not
just in the docs CI job.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "scripts", "check_docs.py")
README = os.path.join(REPO_ROOT, "README.md")
ARCHITECTURE = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")


def checker_module():
    import importlib.util

    module_spec = importlib.util.spec_from_file_location(
        "check_docs", CHECKER
    )
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    return module


class TestDocsExist:
    def test_readme_covers_the_required_ground(self):
        with open(README) as handle:
            text = handle.read()
        for required in ("pip install -e .", "repro serve", "repro batch",
                         "repro calibrate", "--cache", "Figure 8"):
            assert required in text, f"README.md lost {required!r}"

    def test_architecture_covers_the_pipeline_and_formats(self):
        with open(ARCHITECTURE) as handle:
            text = handle.read()
        for required in ("repro.lang", "cost model", "entry_format",
                         "calibration_version", "plan_store", "two-level"):
            assert required.lower() in text.lower(), \
                f"ARCHITECTURE.md lost {required!r}"


class TestLinks:
    @pytest.mark.parametrize("path", [README, ARCHITECTURE])
    def test_intra_repo_links_resolve(self, path):
        module = checker_module()
        with open(path) as handle:
            failures = module.check_links(path, handle.read())
        assert failures == []

    def test_checker_flags_broken_links(self, tmp_path):
        module = checker_module()
        page = tmp_path / "page.md"
        page.write_text("[gone](no/such/file.py) [ok](page.md) "
                        "[ext](https://example.com) [anchor](#x)")
        failures = module.check_links(str(page), page.read_text())
        assert len(failures) == 1
        assert "no/such/file.py" in failures[0]


@pytest.mark.slow
class TestSnippets:
    """Execute every documented python snippet (the heavyweight check)."""

    @pytest.mark.parametrize("path", [README, ARCHITECTURE],
                             ids=["readme", "architecture"])
    def test_snippets_run(self, path):
        result = subprocess.run(
            [sys.executable, CHECKER, path],
            capture_output=True, text=True, cwd=REPO_ROOT, timeout=600,
        )
        assert result.returncode == 0, (
            f"doc snippets failed:\n{result.stdout}\n{result.stderr}"
        )

    def test_snippet_extraction_sees_the_fences(self):
        module = checker_module()
        with open(README) as handle:
            snippets = module.python_snippets(handle.read())
        assert len(snippets) >= 3  # quickstart, query, persistence
        assert any("cache_path" in s for s in snippets)
