"""Unit tests for GD plans and the Figure 5 plan space."""

import pytest

from repro.core.plan_space import (
    STOCHASTIC_VARIANTS,
    enumerate_plans,
    plans_for_algorithm,
    space_size,
)
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError


class TestGDPlan:
    def test_bgd_plan(self):
        plan = GDPlan("bgd")
        assert not plan.is_stochastic
        assert plan.effective_batch_size is None
        assert plan.label == "BGD"

    def test_sgd_plan_label(self):
        plan = GDPlan("sgd", "lazy", "shuffle")
        assert plan.label == "SGD-lazy-shuffle"
        assert plan.effective_batch_size == 1

    def test_mgd_default_batch(self):
        plan = GDPlan("mgd", "eager", "bernoulli")
        assert plan.effective_batch_size == 1000

    def test_mgd_batch_override(self):
        plan = GDPlan("mgd", "eager", "shuffle", batch_size=10_000)
        assert plan.effective_batch_size == 10_000

    def test_stochastic_requires_sampler(self):
        with pytest.raises(PlanError):
            GDPlan("sgd")

    def test_bgd_rejects_sampler(self):
        with pytest.raises(PlanError):
            GDPlan("bgd", sampling="shuffle")

    def test_bgd_rejects_lazy(self):
        with pytest.raises(PlanError):
            GDPlan("bgd", transform_mode="lazy")

    def test_lazy_bernoulli_excluded(self):
        # Section 6: "Bernoulli sampling goes through all the data anyways".
        with pytest.raises(PlanError):
            GDPlan("sgd", "lazy", "bernoulli")

    def test_unknown_algorithm(self):
        with pytest.raises(PlanError):
            GDPlan("newton")

    def test_unknown_sampler(self):
        with pytest.raises(PlanError):
            GDPlan("sgd", "eager", "systematic")

    def test_unknown_transform_mode(self):
        with pytest.raises(PlanError):
            GDPlan("sgd", "deferred", "shuffle")

    def test_bad_batch(self):
        with pytest.raises(PlanError):
            GDPlan("mgd", "eager", "shuffle", batch_size=0)

    def test_plans_hashable_and_frozen(self):
        a = GDPlan("sgd", "lazy", "shuffle")
        b = GDPlan("sgd", "lazy", "shuffle")
        assert a == b
        assert len({a, b}) == 1


class TestPlanSpace:
    def test_eleven_plans_for_core_algorithms(self):
        # Figure 5: 1 (BGD) + 5 (MGD) + 5 (SGD) = 11 plans.
        plans = enumerate_plans()
        assert len(plans) == 11
        assert space_size() == 11

    def test_bgd_has_single_plan(self):
        assert len(plans_for_algorithm("bgd")) == 1

    def test_stochastic_variants_match_figure5(self):
        assert set(STOCHASTIC_VARIANTS) == {
            ("eager", "bernoulli"),
            ("eager", "random"),
            ("eager", "shuffle"),
            ("lazy", "random"),
            ("lazy", "shuffle"),
        }

    def test_space_grows_with_extra_algorithms(self):
        # "our search space size is fully parameterized based on the
        # number of GD algorithms" (Section 6).
        plans = enumerate_plans(("bgd", "mgd", "sgd", "svrg"))
        assert len(plans) == 16

    def test_all_plans_distinct(self):
        plans = enumerate_plans()
        assert len(set(plans)) == len(plans)

    def test_batch_size_propagated(self):
        plans = enumerate_plans(("mgd",), batch_sizes={"mgd": 5000})
        assert all(p.effective_batch_size == 5000 for p in plans)


class TestTrainingSpec:
    def test_defaults(self):
        spec = TrainingSpec()
        assert spec.tolerance == 1e-3
        assert spec.max_iter == 1000

    def test_gradient_materialisation(self):
        spec = TrainingSpec(task="svm")
        assert spec.gradient().task == "svm"

    def test_l2_applied(self):
        from repro.gd.gradients import L2Regularized

        spec = TrainingSpec(task="logreg", l2=0.1)
        assert isinstance(spec.gradient(), L2Regularized)

    def test_validation(self):
        with pytest.raises(PlanError):
            TrainingSpec(tolerance=0)
        with pytest.raises(PlanError):
            TrainingSpec(max_iter=0)
        with pytest.raises(PlanError):
            TrainingSpec(time_budget_s=-1)
