"""Optimizer-state carry-over: resume equivalence and transfer policy.

The contract under test: ``run(N)`` is bit-identical to ``run(k)`` ->
export :class:`OptimizerState` -> ``resume(N - k)`` for same-algorithm
segments, at both the pure-math level (``run_loop`` / ``svrg``) and the
plan-executor level, across the algorithm x updater matrix; plus the
JSON round trip of the snapshot and the cross-algorithm transfer policy.

The randomized kill-point suites push the same contract through the
checkpoint substrate: snapshots exported on a cadence mid-run
(``state_every`` / executor ``checkpoint_every``), a seeded harness
that "kills" training at an arbitrary iteration -- including inside an
SVRG epoch and one iteration after a mid-flight plan switch -- and
durable service jobs resumed over json and sqlite stores.
"""

import json

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.plan_space import plans_for_algorithm
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError
from repro.gd import registry as gd_registry
from repro.gd.base import (
    AdamUpdater,
    MomentumUpdater,
    full_batch_selector,
    run_loop,
)
from repro.gd.gradients import LogisticGradient
from repro.gd.state import OptimizerState
from repro.gd.step_size import OffsetStep, make_step_size, with_offset
from repro.gd.svrg import svrg

from support import make_dataset

N_TOTAL = 60
SPLITS = (1, 23, 59)

#: The resume-equivalence matrices are *derived from the registry*, so
#: every registered algorithm -- including plugins -- is automatically
#: proven bit-identical on stop/resume.  Driver-less specs run through
#: run_loop with the selector/updater their spec implies; driver-based
#: specs that declare ``state`` support resume through registry.run.
RUN_LOOP_ALGORITHMS = sorted(
    name for name, s in gd_registry.ALGORITHMS.items() if s.driver is None
)
DRIVER_ALGORITHMS = sorted(
    name for name, s in gd_registry.ALGORITHMS.items()
    if s.driver is not None and "state" in (s.accepted_kwargs or ())
)


def registry_selector(algorithm, n):
    """The selector the registry would hand run_loop (small batches so
    the 120-row test problem stays genuinely stochastic)."""
    return gd_registry.selector_for(algorithm, n, batch_size=32)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(120, 6))
    w_star = rng.normal(size=6)
    y = (X @ w_star > 0).astype(float) * 2 - 1
    return X, y, LogisticGradient()


def json_round_trip(state) -> OptimizerState:
    """Serialize/deserialize through actual JSON text, like a trace."""
    return OptimizerState.from_dict(json.loads(json.dumps(state.to_dict())))


class TestRunLoopResumeEquivalence:
    @pytest.mark.parametrize("algorithm", RUN_LOOP_ALGORITHMS)
    @pytest.mark.parametrize("k", SPLITS)
    def test_stop_and_resume_is_bit_identical(self, problem, algorithm, k):
        X, y, gradient = problem
        selector = registry_selector(algorithm, X.shape[0])

        def run(max_iter, w0=None, state=None, seed=5):
            return run_loop(
                X, y, gradient, selector,
                step_size=1.0,            # MLlib beta/sqrt(i): position matters
                tolerance=0.0,            # never converge: fixed-length runs
                max_iter=max_iter,
                w0=w0,
                updater=gd_registry.updater_for(algorithm),
                rng=np.random.default_rng(seed),
                state=state,
            )

        one_shot = run(N_TOTAL)
        first = run(k)
        # The snapshot survives real JSON (what a persisted trace holds).
        carried = json_round_trip(first.state)
        # A different seed proves the resume takes the *carried* stream.
        second = run(N_TOTAL - k, w0=first.weights, state=carried, seed=999)

        assert np.array_equal(one_shot.weights, second.weights)
        np.testing.assert_array_equal(
            one_shot.deltas, np.concatenate([first.deltas, second.deltas])
        )
        assert second.state.iteration_offset == N_TOTAL

    @pytest.mark.parametrize("k", SPLITS)
    def test_caller_supplied_updater_on_any_selector(self, problem, k):
        # The updater need not come from the algorithm's own spec:
        # buffers still carry across a resume on a full-batch selector.
        X, y, gradient = problem

        def run(max_iter, w0=None, state=None, seed=5):
            return run_loop(
                X, y, gradient, full_batch_selector,
                step_size=1.0, tolerance=0.0, max_iter=max_iter, w0=w0,
                updater=AdamUpdater(), rng=np.random.default_rng(seed),
                state=state,
            )

        one_shot = run(N_TOTAL)
        first = run(k)
        second = run(N_TOTAL - k, w0=first.weights,
                     state=json_round_trip(first.state), seed=999)
        assert np.array_equal(one_shot.weights, second.weights)

    def test_resume_without_state_restarts_the_schedule(self, problem):
        X, y, gradient = problem
        selector = registry_selector("bgd", X.shape[0])
        one_shot = run_loop(X, y, gradient, selector, step_size=1.0,
                            tolerance=0.0, max_iter=N_TOTAL)
        first = run_loop(X, y, gradient, selector, step_size=1.0,
                         tolerance=0.0, max_iter=23)
        legacy = run_loop(X, y, gradient, selector, step_size=1.0,
                          tolerance=0.0, max_iter=N_TOTAL - 23,
                          w0=first.weights)
        # Weights-only resume restarts beta/sqrt(i) at 1: not equivalent.
        assert not np.array_equal(one_shot.weights, legacy.weights)


class TestSVRGResumeEquivalence:
    @pytest.mark.parametrize("k", (5, 23, 50))
    def test_anchor_cadence_and_control_variate_survive(self, problem, k):
        X, y, gradient = problem

        def run(max_iter, w0=None, state=None, seed=5):
            return svrg(
                X, y, gradient, update_frequency=7, step_size=0.05,
                tolerance=0.0, max_iter=max_iter, w0=w0, state=state,
                rng=np.random.default_rng(seed),
            )

        one_shot = run(N_TOTAL)
        first = run(k)
        second = run(N_TOTAL - k, w0=first.weights,
                     state=json_round_trip(first.state), seed=999)

        assert np.array_equal(one_shot.weights, second.weights)
        np.testing.assert_array_equal(
            one_shot.deltas, np.concatenate([first.deltas, second.deltas])
        )

    def test_entry_without_svrg_state_recomputes_anchor(self, problem):
        X, y, gradient = problem
        # A cross-algorithm transfer drops SVRG state: entering with only
        # an offset must anchor immediately at the carried weights.
        w0 = np.full(X.shape[1], 0.1)
        state = OptimizerState(iteration_offset=40)
        result = svrg(X, y, gradient, update_frequency=7, step_size=0.05,
                      tolerance=0.0, max_iter=3, w0=w0, state=state)
        assert result.state.svrg["last_anchor"] == 41
        # The anchor was taken at the resumed weights, not at zero.
        np.testing.assert_allclose(
            np.asarray(result.state.svrg["w_bar"]), w0, atol=0.05
        )


class TestDriverResumeEquivalence:
    """Every driver-based registered algorithm that declares ``state``
    support (svrg, arc, future plugins) resumes bit-identically through
    registry.run."""

    @pytest.mark.parametrize("algorithm", DRIVER_ALGORITHMS)
    @pytest.mark.parametrize("k", (5, 23, 50))
    def test_stop_and_resume_is_bit_identical(self, problem, algorithm, k):
        X, y, gradient = problem

        def run(max_iter, w0=None, state=None, seed=5):
            return gd_registry.run(
                algorithm, X, y, gradient, step_size=0.05,
                tolerance=0.0, max_iter=max_iter, w0=w0, state=state,
                rng=np.random.default_rng(seed),
            )

        one_shot = run(N_TOTAL)
        first = run(k)
        second = run(N_TOTAL - k, w0=first.weights,
                     state=json_round_trip(first.state), seed=999)

        assert np.array_equal(one_shot.weights, second.weights)
        np.testing.assert_array_equal(
            one_shot.deltas, np.concatenate([first.deltas, second.deltas])
        )


def _executor_plans():
    """One representative plan per executor-capable registered algorithm,
    rotating through the plan-space variants so every sampling strategy
    and both transform modes stay covered as the registry grows."""
    names = sorted(
        name for name, s in gd_registry.ALGORITHMS.items()
        if s.supports_executor
    )
    plans = []
    for idx, name in enumerate(names):
        entry = gd_registry.ALGORITHMS[name]
        batch = 64 if entry.stochastic and not entry.batch_size_fixed else None
        variants = plans_for_algorithm(name, batch)
        plans.append(variants[idx % len(variants)])
    return plans


EXECUTOR_PLANS = _executor_plans()


class TestExecutorResumeEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset(n_phys=600, d=8, task="logreg", seed=4)

    @pytest.mark.parametrize(
        "plan", EXECUTOR_PLANS, ids=[str(p) for p in EXECUTOR_PLANS]
    )
    def test_stop_and_resume_matches_one_shot(self, spec, dataset, plan):
        k = 23
        training = TrainingSpec(task="logreg", step_size=1.0,
                                tolerance=1e-12, max_iter=N_TOTAL, seed=3)
        one_shot = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan, training
        )

        first = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan,
            TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                         max_iter=k, seed=3),
        )
        second = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan,
            TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                         max_iter=N_TOTAL - k, seed=3),
            initial_weights=first.weights,
            # Dict form: what a PlanSegment/trace carries.
            initial_state=json.loads(json.dumps(first.state.to_dict())),
        )

        assert np.array_equal(one_shot.weights, second.weights)
        np.testing.assert_array_equal(
            one_shot.deltas, np.concatenate([first.deltas, second.deltas])
        )
        assert second.state.iteration_offset == N_TOTAL

    def test_exported_state_names_the_updater(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-12, max_iter=5,
                                seed=3)
        result = execute_plan(
            SimulatedCluster(spec, seed=0), dataset,
            GDPlan("momentum", "eager", "shuffle", 64), training,
        )
        assert result.state.updater == MomentumUpdater().name
        assert "v" in result.state.updater_buffers
        assert result.state.convergence is not None
        assert result.state.rng_state is not None


class TestOptimizerStateSerialization:
    def test_round_trip_preserves_every_field(self):
        state = OptimizerState(
            iteration_offset=123,
            updater="adam",
            updater_buffers={"m": [0.1, 0.2], "v": [0.3, 0.4]},
            algorithm_state={
                "svrg": {"w_bar": [1.0], "mu": [2.0], "last_anchor": 120},
            },
            convergence={"previous": [5.0, 6.0]},
            rng_state=np.random.default_rng(3).bit_generator.state,
            sampler={"pid": 1, "sim_cursor": 9, "phys_order": [3, 1],
                     "phys_cursor": 1},
        )
        restored = json_round_trip(state)
        assert restored == state

    def test_unknown_keys_are_tolerated(self):
        payload = OptimizerState(iteration_offset=7).to_dict()
        payload["from_the_future"] = {"x": 1}
        assert OptimizerState.from_dict(payload).iteration_offset == 7

    def test_newer_format_is_refused(self):
        payload = OptimizerState().to_dict()
        payload["state_format"] = 99
        with pytest.raises(PlanError):
            OptimizerState.from_dict(payload)


class TestTransferPolicy:
    def momentum_state(self):
        return OptimizerState(
            iteration_offset=200,
            updater=MomentumUpdater().name,
            updater_buffers={"v": [0.5, -0.5]},
            rng_state=np.random.default_rng(0).bit_generator.state,
            sampler={"pid": 0, "sim_cursor": 3, "phys_order": [1, 0],
                     "phys_cursor": 1},
        )

    def test_offset_and_rng_always_carry(self):
        out = self.momentum_state().transfer_to("adam")
        assert out.iteration_offset == 200
        assert out.rng_state is not None
        assert any("iteration offset 200 carried" in n for n in out.notes)

    def test_matching_updater_buffers_carry(self):
        out = self.momentum_state().transfer_to("momentum")
        assert out.updater_buffers == {"v": [0.5, -0.5]}
        assert any("buffers carried" in n for n in out.notes)

    def test_mismatched_updater_buffers_drop_with_note(self):
        out = self.momentum_state().transfer_to("adam")
        assert out.updater_buffers == {}
        assert any("buffers dropped" in n for n in out.notes)

    def test_svrg_anchor_recomputed_on_entry(self):
        state = OptimizerState(
            iteration_offset=90,
            algorithm_state={
                "svrg": {"w_bar": [1.0], "mu": [0.1], "last_anchor": 85},
            },
        )
        out = state.transfer_to("svrg")
        assert out.svrg is None
        assert any("anchor" in n for n in out.notes)

    def test_plugin_namespaces_route_through_spec_hooks(self):
        state = OptimizerState(
            iteration_offset=40,
            algorithm_state={"arc": {"phase": 2, "norm0": 1.5,
                                     "switched_at": 21, "last_probe": 39}},
        )
        out = state.transfer_to("mgd")
        assert out.algorithm_state == {}
        assert any("re-probed" in n for n in out.notes)

    def test_format1_snapshot_migrates_and_transfers(self):
        payload = {"state_format": 1, "iteration_offset": 12,
                   "svrg": {"w_bar": [1.0], "mu": [0.5], "last_anchor": 8}}
        state = OptimizerState.from_dict(payload)
        assert state.algorithm_state == {"svrg": payload["svrg"]}
        assert state.svrg == payload["svrg"]
        out = state.transfer_to("mgd")
        assert out.svrg is None

    def test_sampler_cursors_drop_on_plan_change(self):
        out = self.momentum_state().transfer_to("sgd")
        assert out.sampler is None
        assert any("sampler cursors dropped" in n for n in out.notes)


class TestConvergenceWinsOrdering:
    """A run that converges on its stopping iteration reports converged
    (run_loop / svrg / PlanExecutor agree; the executor documented this
    first)."""

    def test_run_loop_convergence_beats_callback_stop(self, problem):
        X, y, gradient = problem
        result = run_loop(
            X, y, gradient, full_batch_selector,
            step_size="constant:0.05", tolerance=1e50, max_iter=10,
            iteration_callback=lambda i, w, delta: True,
        )
        assert result.iterations == 1
        assert result.converged

    def test_svrg_convergence_beats_callback_stop(self, problem):
        X, y, gradient = problem
        result = svrg(
            X, y, gradient, step_size=0.05, tolerance=1e50, max_iter=10,
            iteration_callback=lambda t, w, delta: True,
        )
        assert result.iterations == 1
        assert result.converged

    def test_callback_still_stops_unconverged_runs(self, problem):
        X, y, gradient = problem
        result = run_loop(
            X, y, gradient, full_batch_selector,
            step_size="constant:0.05", tolerance=1e-12, max_iter=100,
            iteration_callback=lambda i, w, delta: i >= 4,
        )
        assert result.iterations == 4
        assert not result.converged


def kill_point(label, low=1, high=N_TOTAL - 1, forbid=None):
    """Deterministic 'arbitrary' kill iteration for one scenario.

    Seeded from the scenario label (crc32: stable across processes,
    unlike ``hash``), so every run of the suite kills at the same --
    but not hand-picked -- iteration; ``forbid`` re-draws e.g. anchor
    boundaries.
    """
    import zlib

    rng = np.random.default_rng(zlib.crc32(label.encode()))
    for _ in range(100):
        k = int(rng.integers(low, high + 1))
        if forbid is None or not forbid(k):
            return k
    raise AssertionError("no admissible kill point")


class TestStateExportCadence:
    """gd-level ``state_every``/``state_callback``: mid-run snapshots
    that perturb nothing and each resume bit-identically."""

    @pytest.mark.parametrize("algorithm", RUN_LOOP_ALGORITHMS)
    def test_random_kill_resumes_bit_identically(self, problem, algorithm):
        X, y, gradient = problem
        selector = registry_selector(algorithm, X.shape[0])
        snapshots = {}

        def run(max_iter, w0=None, state=None, seed=5, capture=False):
            return run_loop(
                X, y, gradient, selector,
                step_size=1.0, tolerance=0.0, max_iter=max_iter,
                w0=w0, updater=gd_registry.updater_for(algorithm),
                rng=np.random.default_rng(seed), state=state,
                state_every=1 if capture else None,
                state_callback=(
                    (lambda i, w, s: snapshots.__setitem__(i, (w, s)))
                    if capture else None
                ),
            )

        plain = run(N_TOTAL)
        captured = run(N_TOTAL, capture=True)
        # Attaching the cadence hook is behaviour-preserving.
        assert np.array_equal(plain.weights, captured.weights)
        assert set(snapshots) == set(range(1, N_TOTAL))  # not the exit

        k = kill_point(f"run_loop/{algorithm}")
        w_k, state_k = snapshots[k]
        resumed = run(N_TOTAL - k, w0=w_k,
                      state=json_round_trip(state_k), seed=999)
        assert np.array_equal(plain.weights, resumed.weights)
        np.testing.assert_array_equal(
            plain.deltas, np.concatenate([plain.deltas[:k], resumed.deltas])
        )

    def test_svrg_kill_inside_an_epoch(self, problem):
        X, y, gradient = problem
        m = 7
        snapshots = {}

        def run(max_iter, w0=None, state=None, seed=5, capture=False):
            return svrg(
                X, y, gradient, update_frequency=m, step_size=0.05,
                tolerance=0.0, max_iter=max_iter, w0=w0, state=state,
                rng=np.random.default_rng(seed),
                state_every=1 if capture else None,
                state_callback=(
                    (lambda i, w, s: snapshots.__setitem__(i, (w, s)))
                    if capture else None
                ),
            )

        plain = run(N_TOTAL)
        run(N_TOTAL, capture=True)
        # Kill strictly inside an epoch: not an anchor iteration (the
        # anchor fires when gt - last_anchor >= m, i.e. at 1, 1+m, ...).
        k = kill_point("svrg/epoch", low=2,
                       forbid=lambda i: (i - 1) % m == 0)
        w_k, state_k = snapshots[k]
        assert state_k.svrg["last_anchor"] < k  # genuinely mid-epoch
        resumed = run(N_TOTAL - k, w0=w_k,
                      state=json_round_trip(state_k), seed=999)
        assert np.array_equal(plain.weights, resumed.weights)
        # The resumed run must not have re-anchored early.
        assert resumed.state.svrg["last_anchor"] == \
            plain.state.svrg["last_anchor"]

    def test_snapshot_cadence_is_global_on_resume(self, problem):
        X, y, gradient = problem
        seen = []
        first = run_loop(X, y, gradient, full_batch_selector,
                         step_size=1.0, tolerance=0.0, max_iter=20)
        run_loop(X, y, gradient, full_batch_selector,
                 step_size=1.0, tolerance=0.0, max_iter=20,
                 w0=first.weights, state=first.state,
                 state_every=8,
                 state_callback=lambda i, w, s: seen.append(i))
        assert seen == [24, 32]  # global multiples, not local ones


class TestExecutorCheckpointCadence:
    """Executor-level ``checkpoint_every``: global-iteration cadence,
    behaviour-preserving, every exported snapshot resumes exactly."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset(n_phys=600, d=8, task="logreg", seed=4)

    @pytest.mark.parametrize(
        "plan", EXECUTOR_PLANS, ids=[str(p) for p in EXECUTOR_PLANS]
    )
    def test_random_kill_resumes_bit_identically(self, spec, dataset, plan):
        training = TrainingSpec(task="logreg", step_size=1.0,
                                tolerance=1e-12, max_iter=N_TOTAL, seed=3)
        plain = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan, training
        )
        checkpoints = {}
        observed = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan, training,
            checkpoint_every=1,
            checkpoint_callback=(
                lambda i, w, s: checkpoints.__setitem__(i, (w, s))
            ),
        )
        assert np.array_equal(plain.weights, observed.weights)
        np.testing.assert_array_equal(plain.deltas, observed.deltas)

        k = kill_point(f"executor/{plan}")
        w_k, state_k = checkpoints[k]
        resumed = execute_plan(
            SimulatedCluster(spec, seed=0), dataset, plan,
            TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                         max_iter=N_TOTAL - k, seed=3),
            initial_weights=w_k,
            initial_state=json.loads(json.dumps(state_k.to_dict())),
        )
        assert np.array_equal(plain.weights, resumed.weights)
        np.testing.assert_array_equal(
            plain.deltas,
            np.concatenate([plain.deltas[:k], resumed.deltas]),
        )
        assert resumed.state.iteration_offset == N_TOTAL


class TestRandomKillJobs:
    """Service-level jobs: kill at a seeded arbitrary iteration, resume
    in a fresh service over a json and a sqlite store -- weights and the
    whole delta trajectory must match the uninterrupted job."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset(n_phys=600, d=8, task="logreg", seed=4)

    @pytest.fixture(scope="class")
    def training(self):
        return TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                            max_iter=N_TOTAL, seed=3)

    def job(self, spec, dataset, training, path, job_id, plan, **kwargs):
        from repro.service import OptimizerService

        service = OptimizerService(spec=spec, seed=5, checkpoint_path=path)
        return service.train(
            dataset, training, fixed_iterations=N_TOTAL,
            algorithms=(plan.algorithm,),
            batch_sizes=(
                {plan.algorithm: plan.batch_size}
                if plan.batch_size is not None else None
            ),
            job_id=job_id, **kwargs,
        )

    @pytest.mark.parametrize("store", ["jobs.json", "jobs.db"])
    @pytest.mark.parametrize(
        "plan", EXECUTOR_PLANS, ids=[str(p) for p in EXECUTOR_PLANS]
    )
    def test_kill_and_resume_matches_uninterrupted(
        self, spec, dataset, training, tmp_path, plan, store
    ):
        from repro.runtime import JobBudget

        baseline = self.job(
            spec, dataset, training, str(tmp_path / ("base-" + store)),
            "u", plan,
        )
        assert baseline.job.status == "done"

        k = kill_point(f"job/{plan}/{store}")
        path = str(tmp_path / store)
        killed = self.job(
            spec, dataset, training, path, "victim", plan,
            checkpoint_every=10, budget=JobBudget(max_iterations=k),
        )
        assert killed.job.preempted
        assert killed.job.done_iterations == k

        resumed = self.job(spec, dataset, training, path, "victim", plan)
        assert resumed.job.resumed
        assert resumed.job.status == "done"
        assert np.array_equal(baseline.weights, resumed.weights)
        assert baseline.trace.all_deltas == resumed.trace.all_deltas


class TestPostSwitchKill:
    """Kill an adaptive job one iteration after a mid-flight plan
    switch; the resumed run must keep the switched-to plan, the
    transferred state, and the uninterrupted run's exact trajectory."""

    def scenario(self, spec, dataset, path, job_id, **kwargs):
        from repro.runtime import AdaptiveSettings, PerturbedCostModel
        from repro.service import OptimizerService

        # The fault: mgd's per-iteration cost under-estimated 20x, so
        # the optimizer mis-picks it; the monitor notices the true cost
        # after min_points iterations and switches to sgd.
        service = OptimizerService(
            spec=spec, seed=5,
            algorithms=("mgd", "sgd"),
            batch_sizes={"mgd": 256},
            cost_model=PerturbedCostModel(spec, {"mgd": 0.05}),
            checkpoint_path=path,
        )
        training = TrainingSpec(task="logreg", step_size=1.0,
                                tolerance=1e-12, max_iter=N_TOTAL, seed=3)
        settings = AdaptiveSettings(refit_every=5, min_points=5,
                                    max_switches=2)
        return service.train(
            dataset, training, fixed_iterations=N_TOTAL,
            adaptive=True, adaptive_settings=settings,
            job_id=job_id, **kwargs,
        )

    def test_kill_one_iteration_after_the_switch(self, spec, tmp_path):
        from repro.runtime import JobBudget

        dataset = make_dataset(n_phys=600, d=8, task="logreg", seed=4)
        baseline = self.scenario(
            spec, dataset, str(tmp_path / "base.json"), "u"
        )
        assert baseline.trace.switched, "scenario must force a switch"
        switch_at = baseline.trace.switches[0].iteration
        assert baseline.trace.segments[0].algorithm == "mgd"
        assert baseline.trace.segments[-1].algorithm == "sgd"

        path = str(tmp_path / "jobs.json")
        killed = self.scenario(
            spec, dataset, path, "victim",
            budget=JobBudget(max_iterations=switch_at + 1),
        )
        assert killed.job.preempted
        assert killed.job.done_iterations == switch_at + 1
        assert len(killed.trace.switches) == 1  # killed *after* switching

        resumed = self.scenario(spec, dataset, path, "victim")
        assert resumed.job.resumed
        assert resumed.job.status == "done"
        # The resumed lease continues the switched-to plan: no fresh
        # switch events, same final algorithm.
        assert len(resumed.trace.switches) == 1
        assert resumed.trace.segments[-1].algorithm == "sgd"
        # The post-switch transfer notes were persisted and re-imported.
        post_switch = resumed.trace.segments[-1]
        assert any("resumed from checkpoint" in note
                   for note in post_switch.state_transfer)
        assert np.array_equal(baseline.weights, resumed.weights)
        assert baseline.trace.all_deltas == resumed.trace.all_deltas


class TestOffsetStep:
    def test_continues_the_schedule(self):
        base = make_step_size(1.0)            # beta/sqrt(i)
        resumed = with_offset(1.0, 400)
        assert resumed.step(1) == base.step(401)

    def test_zero_offset_is_the_plain_schedule(self):
        assert with_offset("constant:0.5", 0).step(3) == 0.5
        assert not isinstance(with_offset(1.0, 0), OffsetStep)

    def test_offsets_compose(self):
        twice = with_offset(with_offset(1.0, 100), 50)
        assert twice.step(1) == make_step_size(1.0).step(151)

    def test_negative_offset_rejected(self):
        with pytest.raises(PlanError):
            OffsetStep(1.0, -1)
