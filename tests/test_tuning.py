"""Tests for the cost-based hyperparameter tuner (the paper's extension)."""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.plans import TrainingSpec
from repro.core.tuning import (
    CostBasedTuner,
    DEFAULT_STEP_CANDIDATES,
    TuningCandidate,
)
from repro.errors import PlanError

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=1500, d=10, task="linreg", spec=spec,
                        seed=6, noise=0.05)


@pytest.fixture
def tuner(spec):
    engine = SimulatedCluster(spec, seed=0)
    estimator = SpeculativeEstimator(
        SpeculationSettings(sample_size=400, time_budget_s=0.5,
                            max_speculation_iters=600),
        seed=3,
    )
    return CostBasedTuner(engine, estimator=estimator)


@pytest.fixture
def training():
    return TrainingSpec(task="linreg", tolerance=1e-3, max_iter=2000,
                        seed=3)


class TestStepSizeTuning:
    def test_returns_report_over_all_candidates(self, tuner, dataset,
                                                training):
        report = tuner.tune_step_size(dataset, training, algorithm="bgd")
        assert report.parameter == "step_size"
        assert len(report.candidates) == len(DEFAULT_STEP_CANDIDATES)
        assert report.best.feasible

    def test_best_minimises_estimated_total(self, tuner, dataset, training):
        report = tuner.tune_step_size(dataset, training, algorithm="bgd")
        feasible = [c for c in report.candidates if c.feasible]
        assert report.best.estimated_total_s == min(
            c.estimated_total_s for c in feasible
        )

    def test_prefers_faster_schedule_over_crawling_one(self, tuner, dataset,
                                                       training):
        # 1/i^2 effectively freezes after a few iterations on this task
        # (bounded total movement); a constant step converges.  The tuner
        # must never pick the frozen schedule.
        report = tuner.tune_step_size(
            dataset, training, algorithm="bgd",
            candidates=("constant:0.2", "1/i^2:0.2"),
        )
        assert str(report.best.setting) == "constant:0.2"

    def test_rejected_candidates_reported_not_fatal(self, tuner, dataset):
        # An absurd tolerance forces fits; rejected entries are recorded.
        training = TrainingSpec(task="linreg", tolerance=1e-3, max_iter=500,
                                seed=3)
        report = tuner.tune_step_size(
            dataset, training, algorithm="bgd",
            candidates=("constant:0.1", "1/i^2:1e-9"),
        )
        assert report.best.feasible
        assert any(isinstance(c, TuningCandidate) for c in report.candidates)

    def test_empty_candidates_rejected(self, tuner, dataset, training):
        with pytest.raises(PlanError):
            tuner.tune_step_size(dataset, training, candidates=())

    def test_invalid_candidate_name_raises(self, tuner, dataset, training):
        with pytest.raises(PlanError):
            tuner.tune_step_size(dataset, training,
                                 candidates=("warp-speed",))

    def test_stochastic_algorithm_gets_stochastic_plan(self, tuner, dataset,
                                                       training):
        report = tuner.tune_step_size(dataset, training, algorithm="sgd",
                                      candidates=("inv_sqrt:1",))
        assert report.best.plan.is_stochastic

    def test_summary_renders(self, tuner, dataset, training):
        report = tuner.tune_step_size(dataset, training, algorithm="bgd")
        text = report.summary()
        assert "tuned step_size" in text
        assert "est." in text


class TestBatchSizeTuning:
    def test_returns_report(self, tuner, dataset, training):
        report = tuner.tune_batch_size(dataset, training,
                                       candidates=(50, 500))
        assert report.parameter == "batch_size"
        assert report.best.setting in (50, 500)

    def test_batch_plans_carry_batch_size(self, tuner, dataset, training):
        report = tuner.tune_batch_size(dataset, training,
                                       candidates=(64,))
        assert report.candidates[0].plan.effective_batch_size == 64

    def test_empty_candidates(self, tuner, dataset, training):
        with pytest.raises(PlanError):
            tuner.tune_batch_size(dataset, training, candidates=())
