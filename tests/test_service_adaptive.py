"""Service-level adaptive runtime: train(), calibration, recost, TTL."""

import dataclasses

import numpy as np
import pytest

from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.plans import TrainingSpec
from repro.runtime import CalibrationStore, PerturbedCostModel
from repro.service import OptimizerService, PlanCache, approx_nbytes

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=2000, d=20, task="logreg", spec=spec, seed=3,
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02,
    )


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-2, seed=1)


def make_service(spec, **kwargs):
    kwargs.setdefault("speculation", SpeculationSettings(
        sample_size=400, time_budget_s=0.5, max_speculation_iters=800
    ))
    return OptimizerService(spec=spec, seed=5, **kwargs)


def perturbing(service, spec, factors):
    """Make every optimizer the service builds use a perturbed model."""
    service.cost_model = PerturbedCostModel(spec, factors)
    return service


class TestServiceTrain:
    def test_train_executes_the_chosen_plan(self, spec, dataset, training):
        service = make_service(spec)
        outcome = service.train(dataset, training)
        assert outcome.result.iterations > 0
        assert outcome.weights.shape == (dataset.stats.d,)
        assert outcome.trace is None  # non-adaptive: no telemetry
        assert service.trained == 1
        assert "iterations" in outcome.summary()

    def test_per_caller_engine_isolation(self, spec, dataset, training):
        """Each train() runs on a fresh simulated cluster clone."""
        service = make_service(spec)
        first = service.train(dataset, training)
        second = service.train(dataset, training)
        # Identical simulated cost: neither run saw the other's clock,
        # cache residency or RNG stream (second had a warm *plan* cache,
        # which must not leak into execution).
        assert first.result.sim_seconds == second.result.sim_seconds
        assert np.array_equal(first.weights, second.weights)
        assert second.optimization.cache_hit

    def test_callers_own_engine_is_used(self, spec, dataset, training):
        from repro.cluster import SimulatedCluster

        service = make_service(spec)
        engine = SimulatedCluster(spec, seed=5)
        service.train(dataset, training, engine=engine)
        assert engine.clock > 0

    def test_adaptive_train_produces_trace_and_calibration(
        self, spec, dataset, training
    ):
        service = make_service(spec)
        outcome = service.train(dataset, training, adaptive=True)
        assert outcome.trace is not None
        assert outcome.trace.total_iterations == outcome.adaptive.iterations
        assert service.calibration.observations > 0

    def test_train_many_preserves_order(self, spec, dataset, training):
        service = make_service(spec)
        tighter = dataclasses.replace(training, tolerance=5e-3)
        results = service.train_many(
            [(dataset, training), (dataset, tighter)], max_workers=2
        )
        assert len(results) == 2
        assert results[0].optimization.fingerprint != \
            results[1].optimization.fingerprint


class TestCalibratedRecost:
    def test_second_request_recosts_without_respeculation(
        self, spec, dataset, training, monkeypatch
    ):
        service = perturbing(make_service(spec), spec, {"bgd": 0.25})
        service.train(dataset, training, adaptive=True)
        assert service.calibration.version > 0

        speculations = []
        original = SpeculativeEstimator.estimate_all

        def counting(self, *args, **kwargs):
            speculations.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpeculativeEstimator, "estimate_all", counting)
        repeat = service.optimize(dataset, training)
        assert repeat.recalibrated
        assert not repeat.cache_hit
        assert speculations == []  # calibrated estimates, no re-speculation
        assert repeat.report.calibrated
        # The re-costed entry is cached: a third request is a plain hit.
        version = service.calibration.version
        third = service.optimize(dataset, training)
        assert third.cache_hit
        assert service.calibration.version == version

    def test_unperturbed_adaptive_false_is_bit_identical(
        self, spec, dataset, training
    ):
        """adaptive=False through the service matches the direct
        one-shot optimizer exactly (same plan, same execution)."""
        from repro.cluster import SimulatedCluster
        from repro.core.executor import execute_plan
        from repro.core.optimizer import GDOptimizer

        direct_opt = GDOptimizer(
            SimulatedCluster(spec, seed=5),
            estimator=SpeculativeEstimator(
                SpeculationSettings(sample_size=400, time_budget_s=0.5,
                                    max_speculation_iters=800),
                seed=5,
            ),
        )
        direct_report = direct_opt.optimize(dataset, training)
        direct = execute_plan(
            SimulatedCluster(spec, seed=5), dataset,
            direct_report.chosen_plan, training,
        )

        service = make_service(spec, speculation_workers=1)
        served = service.train(dataset, training)
        assert served.report.chosen_plan == direct_report.chosen_plan
        assert np.array_equal(served.weights, direct.weights)
        assert served.result.iterations == direct.iterations

    def test_calibration_persists_across_service_restarts(
        self, spec, dataset, training, tmp_path
    ):
        path = str(tmp_path / "calibration.json")
        first = perturbing(
            make_service(spec, calibration_path=path), spec, {"bgd": 0.25}
        )
        first.train(dataset, training, adaptive=True)
        learned = first.calibration.correction("bgd", spec)
        saved = first.save_calibration()
        assert saved == path

        # A "restarted" service on the same path starts calibrated...
        restarted = perturbing(
            make_service(spec, calibration_path=path), spec, {"bgd": 0.25}
        )
        restored = restarted.calibration.correction("bgd", spec)
        assert restored.cost_factor == pytest.approx(learned.cost_factor)
        # ...and its very first optimize() applies the corrections.
        report = restarted.optimize(dataset, training).report
        assert report.calibrated

    def test_save_without_path_is_noop(self, spec):
        assert make_service(spec).save_calibration() is None


class TestCacheEviction:
    def test_ttl_expires_entries(self):
        clock = [0.0]
        cache = PlanCache(maxsize=8, ttl_s=10.0, clock=lambda: clock[0])
        cache.put("a", "value")
        assert cache.get("a") == "value"
        clock[0] = 10.1
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_ttl_bounds_staleness_for_drifting_stats(
        self, spec, dataset, training
    ):
        """A workload whose DatasetStats drift keeps being re-requested
        under the *old* handle; the TTL forces a recompute instead of
        serving the stale plan forever."""
        service = make_service(spec, cache_ttl_s=30.0)
        clock = [0.0]
        service.cache._clock = lambda: clock[0]

        service.optimize(dataset, training, fixed_iterations=50)
        within = service.optimize(dataset, training, fixed_iterations=50)
        assert within.cache_hit
        clock[0] = 31.0
        after = service.optimize(dataset, training, fixed_iterations=50)
        assert not after.cache_hit
        assert service.computed == 2
        # The drifted dataset itself fingerprints differently anyway --
        # TTL covers callers still holding the old stats object.
        grown = make_dataset(n_phys=2000, sim_n=4000, d=20, task="logreg",
                             spec=spec, seed=3)
        assert service.fingerprint(grown, training, 50) != \
            service.fingerprint(dataset, training, 50)

    def test_size_aware_eviction(self):
        cache = PlanCache(maxsize=100, max_bytes=1000)
        cache.put("a", "x", nbytes=400)
        cache.put("b", "y", nbytes=400)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", "z", nbytes=400)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.total_bytes == 800

    def test_oversize_value_is_refused_not_cache_flushing(self):
        cache = PlanCache(maxsize=100, max_bytes=1000)
        cache.put("a", "x", nbytes=400)
        cache.put("b", "y", nbytes=400)
        cache.put("fat", "z", nbytes=5000)
        # The warm entries survive; the oversize value is not cached.
        assert "a" in cache
        assert "b" in cache
        assert "fat" not in cache
        assert cache.stats().total_bytes == 800

    def test_no_byte_budget_skips_sizing(self):
        cache = PlanCache(maxsize=4)
        cache.put("a", {"big": np.zeros(100_000)})
        assert cache.stats().total_bytes == 0  # sizing walk skipped
        assert cache.get("a") is not None

    def test_approx_nbytes_sees_arrays(self):
        small = approx_nbytes({"x": np.zeros(10)})
        large = approx_nbytes({"x": np.zeros(10_000)})
        assert large > small
        assert large >= 80_000

    def test_ttl_and_size_validate(self):
        with pytest.raises(ValueError):
            PlanCache(ttl_s=0)
        with pytest.raises(ValueError):
            PlanCache(max_bytes=0)

    def test_service_wires_cache_budgets(self, spec):
        service = make_service(
            spec, cache_ttl_s=5.0, cache_max_bytes=1 << 20
        )
        assert service.cache.ttl_s == 5.0
        assert service.cache.max_bytes == 1 << 20
        assert "ttl" in service.cache.stats().summary()


class TestProcessPoolSpeculation:
    def test_process_pool_matches_sequential(self, spec, dataset, training):
        from repro.gd.gradients import task_gradient

        settings = SpeculationSettings(
            sample_size=400, time_budget_s=5.0, max_speculation_iters=400
        )
        gradient = task_gradient("logreg")
        sequential = SpeculativeEstimator(settings, seed=5).estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-2
        )
        pooled = SpeculativeEstimator(
            settings, seed=5, max_workers="process"
        ).estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-2
        )
        assert set(pooled) == set(sequential)
        for algorithm in sequential:
            assert pooled[algorithm].estimated_iterations == \
                sequential[algorithm].estimated_iterations

    def test_unpicklable_gradient_falls_back_to_threads(
        self, spec, dataset
    ):
        from repro.gd.gradients import task_gradient

        base = task_gradient("logreg")

        class ClosureGradient:
            """Holds a lambda: unpicklable, so processes cannot be used."""

            def __init__(self):
                self.fn = lambda w: w

            def gradient(self, w, X, y):
                return base.gradient(w, X, y)

            def predict(self, w, X):
                return base.predict(w, X)

        settings = SpeculationSettings(
            sample_size=400, time_budget_s=5.0, max_speculation_iters=400
        )
        estimates = SpeculativeEstimator(
            settings, seed=5, max_workers="process"
        ).estimate_all(
            dataset.X, dataset.y, ClosureGradient(), target_tolerance=1e-2
        )
        assert set(estimates) == {"bgd", "mgd", "sgd"}
        assert all(e.estimated_iterations >= 1 for e in estimates.values())

    def test_service_accepts_process_workers(self, spec, dataset, training):
        service = make_service(spec, speculation_workers="process")
        result = service.optimize(dataset, training)
        assert result.report.chosen_plan is not None
