"""Tests for the experiment registry and the cheap experiments."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig01", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15_16", "fig17", "fig18",
            "table2", "table4",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {"ext_space", "ext_curvefit", "ext_tuning"} <= set(EXPERIMENTS)

    def test_descriptions_present(self):
        for _, (runner, description) in EXPERIMENTS.items():
            assert callable(runner)
            assert description

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestCheapExperiments:
    """Only experiments fast enough for the unit-test suite."""

    def test_table2_runs(self):
        ctx = ExperimentContext(quick=True)
        (table,) = run_experiment("table2", ctx)
        assert len(table.rows) == 8
        assert table.row_for(name="svm1")["size"] == "10.0G"

    def test_tables_always_returned_as_list(self):
        ctx = ExperimentContext(quick=True)
        tables = run_experiment("table2", ctx)
        assert isinstance(tables, list)
