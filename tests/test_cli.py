"""Tests for the python -m repro command-line interface."""

import io
import json
import subprocess
import sys

import pytest

from repro.__main__ import main, parse_request_line
from repro.errors import ReproError


class TestCLIMain:
    def test_inline_query(self, capsys):
        code = main(["run classification on adult having epsilon 0.05, "
                     "max iter 200;"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan" in out
        assert "iterations" in out

    def test_query_file(self, tmp_path, capsys):
        path = tmp_path / "q.ml4all"
        path.write_text(
            "run classification on adult having epsilon 0.05, "
            "max iter 200;"
        )
        assert main(["--file", str(path)]) == 0
        assert "chosen plan" in capsys.readouterr().out

    def test_bad_query_reports_error(self, capsys):
        code = main(["run nothing;"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_pinned_algorithm_query(self, capsys):
        code = main(["run svm on svm1 having max iter 100 using "
                     "algorithm sgd, sampler shuffle();"])
        assert code == 0


class TestRequestLineParsing:
    def test_dataset_plus_typed_values(self):
        request = parse_request_line(
            "adult epsilon=0.01 max_iter=200 algorithm=sgd"
        )
        assert request == {
            "dataset": "adult",
            "epsilon": 0.01,
            "max_iter": 200,
            "algorithm": "sgd",
        }

    def test_missing_dataset_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("epsilon=0.01")

    def test_malformed_pair_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("adult epsilon")

    def test_unknown_key_raises(self):
        with pytest.raises(ReproError) as err:
            parse_request_line("adult foo=bar")
        assert "epsilon" in str(err.value)  # names the valid keys

    def test_bad_value_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("adult epsilon=notanumber")


class TestCLIBatch:
    def test_batch_file(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text(
            "adult epsilon=0.05 max_iter=200 fixed_iterations=80\n"
            "# a comment line\n"
            "adult epsilon=0.05 max_iter=200 fixed_iterations=80\n"
        )
        assert main(["batch", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("adult:") == 2
        assert "plan cache" in out
        assert "optimize/s" in out

    def test_batch_repeat_warms_cache(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 fixed_iterations=50\n")
        assert main(["batch", str(path), "--repeat", "3",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "[cache" in out

    def test_batch_empty_file(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("# nothing here\n")
        assert main(["batch", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_batch_unknown_dataset(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("no-such-dataset\n")
        assert main(["batch", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCLIAdaptive:
    def test_batch_train_mode_executes_plans(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 max_iter=200\n")
        assert main(["batch", str(path), "--train", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "iterations" in out
        assert "train/s" in out

    def test_batch_adaptive_persists_calibration(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        store = tmp_path / "calibration.json"
        path.write_text("adult epsilon=0.05 max_iter=200\n")
        assert main(["batch", str(path), "--adaptive", "--workers", "1",
                     "--calibration", str(store)]) == 0
        assert store.exists()
        out = capsys.readouterr().out
        assert "trained" in out

    def test_calibrate_subcommand(self, tmp_path, capsys):
        store = tmp_path / "calibration.json"
        assert main(["calibrate", "adult", "--epsilon", "0.05",
                     "--runs", "2", "--perturb", "bgd=0.25",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "before: calibration store: empty" in out
        assert "after: calibration store:" in out
        assert store.exists()
        # A second invocation starts from the persisted factors.
        assert main(["calibrate", "adult", "--epsilon", "0.05",
                     "--runs", "1", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "before: calibration store: empty" not in out

    def test_calibrate_rejects_bad_perturb(self, capsys):
        assert main(["calibrate", "adult", "--perturb", "nonsense"]) == 2
        assert "ALG=FACTOR" in capsys.readouterr().err

    def test_calibrate_rejects_unknown_perturb_algorithm(self, capsys):
        assert main(["calibrate", "adult", "--perturb", "bdg=0.25"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestCLIServe:
    def test_serve_loop(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                "adult epsilon=0.05 fixed_iterations=50\n"
                "adult epsilon=0.05 fixed_iterations=50\n"
                "quit\n"
            ),
        )
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert out.count("adult:") == 2
        assert "[cache" in out          # second request hit the cache
        assert "plan cache" in out

    def test_serve_recovers_from_bad_request(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                "bogus-dataset\n"
                "adult epsilon=0.05 fixed_iterations=50\n"
            ),
        )
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "adult:" in captured.out

    def test_serve_emits_structured_errors_on_stdout(self, monkeypatch,
                                                     capsys):
        # Failures surface as machine-readable JSON on stdout -- the
        # same envelope the socket front-end speaks -- and the loop
        # keeps serving afterwards.
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                "adult epsilon=not-a-float\n"
                "no-such-dataset epsilon=0.05\n"
                "adult epsilon=0.05 fixed_iterations=50\n"
            ),
        )
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        payloads = [json.loads(line) for line in captured.out.splitlines()
                    if line.startswith("{")]
        assert [p["error"] for p in payloads] == [
            "bad_request", "request_failed"
        ]
        assert all(p["ok"] is False and p["detail"] for p in payloads)
        assert "adult:" in captured.out

    def test_serve_accepts_json_lines_and_metrics_verb(self, monkeypatch,
                                                       capsys):
        # The stdin loop shares the socket front-end's dispatcher, so
        # JSON request lines and the bare ``metrics`` verb work there
        # too.
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                '{"dataset": "adult", "epsilon": 0.05, '
                '"fixed_iterations": 50}\n'
                "metrics\n"
            ),
        )
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "adult:" in out
        assert "service.computed 1" in out
        assert "frontend.served 1" in out


class TestCLITrainJobs:
    ARGS = ["adult", "epsilon=0.001", "max_iter=400", "algorithm=mgd"]

    def run_lease(self, store, extra, capsys):
        code = main(["train", *self.ARGS, "--job-id", "nightly",
                     "--checkpoint", str(store), "--checkpoint-every",
                     "25", *extra])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        return captured.out

    def test_preempt_then_resume_then_idempotent(self, tmp_path, capsys):
        store = tmp_path / "jobs.json"
        out = self.run_lease(store, ["--max-iterations", "50"], capsys)
        assert "preempted at iteration 50" in out
        assert "re-run the same command to resume" in out

        out = self.run_lease(store, [], capsys)
        assert "done" in out
        assert "(resumed)" in out
        assert "1 job lease(s) (1 resumed" in out

        # A third run returns the stored outcome without retraining.
        out = self.run_lease(store, [], capsys)
        assert "already done" in out

    def test_train_requires_job_id_and_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "adult"])

    def test_bad_request_line_reports_error(self, tmp_path, capsys):
        code = main(["train", "adult", "bogus=1", "--job-id", "j",
                     "--checkpoint", str(tmp_path / "jobs.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCLIBatchJobs:
    def test_job_lines_train_without_dragging_plain_lines_along(
        self, tmp_path, capsys
    ):
        """One job_id line in a batch file trains *that line only*; the
        other lines keep the cheap optimize-only path, in file order."""
        path = tmp_path / "requests.txt"
        path.write_text(
            "adult epsilon=0.05 fixed_iterations=50\n"
            "adult epsilon=0.001 max_iter=400 algorithm=mgd "
            "job_id=b1 lease_iterations=40\n"
            "adult epsilon=0.05 fixed_iterations=80\n"
        )
        assert main(["batch", str(path), "--workers", "1",
                     "--checkpoint", str(tmp_path / "jobs.json")]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("adult:")]
        assert len(lines) == 3
        # Only the middle (job) line executed a plan.
        assert "iterations" not in lines[0]
        assert "job b1: preempted at iteration 40" in lines[1]
        assert "iterations" not in lines[2]
        assert "request/s" in out  # mixed-mode rate label

    def test_repeat_with_a_job_line_serializes_the_leases(
        self, tmp_path, capsys
    ):
        """--repeat duplicates a job_id line; run concurrently the
        copies would contend for one lease and abort the batch, so
        batch serializes them (the second copy sees 'already done')."""
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 max_iter=200 job_id=r1\n")
        assert main(["batch", str(path), "--repeat", "2", "--workers",
                     "4", "--checkpoint", str(tmp_path / "jobs.json")]) == 0
        out = capsys.readouterr().out
        assert "job r1: done at iteration" in out
        assert "already done" in out


class TestCLIServeJobs:
    def test_restarted_serve_finishes_in_flight_jobs(
        self, tmp_path, monkeypatch, capsys
    ):
        store = tmp_path / "jobs.json"
        # Lease 1: preempted via the request-line budget keys.
        monkeypatch.setattr(sys, "stdin", io.StringIO(
            "adult epsilon=0.001 max_iter=400 algorithm=mgd "
            "job_id=inflight checkpoint_every=25 lease_iterations=50\n"
            "quit\n"
        ))
        assert main(["serve", "--checkpoint", str(store)]) == 0
        out = capsys.readouterr().out
        assert "preempted at iteration 50" in out

        # Restarted server, no input: it re-issues the stored request
        # (budget keys stripped) and finishes the job from the store.
        monkeypatch.setattr(sys, "stdin", io.StringIO("quit\n"))
        assert main(["serve", "--checkpoint", str(store)]) == 0
        out = capsys.readouterr().out
        assert "resuming in-flight job 'inflight' from iteration 50" in out
        assert "job inflight: done" in out
        # The decision came from the checkpoint, not re-speculation.
        assert "[cache" in out

    def test_bad_lease_budget_line_does_not_kill_the_server(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(sys, "stdin", io.StringIO(
            "adult epsilon=0.05 job_id=bad lease_iterations=0\n"
            "adult epsilon=0.05 fixed_iterations=50\n"
        ))
        assert main(["serve", "--checkpoint",
                     str(tmp_path / "jobs.json")]) == 0
        captured = capsys.readouterr()
        assert "error: budget max_iterations" in captured.err
        assert "adult:" in captured.out  # the next line still served

    def test_still_leased_pending_job_is_reported_not_crashed(
        self, tmp_path, monkeypatch, capsys
    ):
        """A hard-killed server's lease outlives it; the restarted
        server must say so (and when to retry), not die or silently
        skip."""
        from repro.service import CheckpointStore, JobCheckpoint

        store = tmp_path / "jobs.json"
        holder = CheckpointStore(path=str(store))
        holder.save(JobCheckpoint(
            job_id="held", status="running", fingerprint="f",
            weights=[0.0], state=None, chosen={"plan": {}},
            trace={"segments": []}, done_iterations=5,
            request={"dataset": "adult", "epsilon": 0.05,
                     "job_id": "held"},
        ), owner="the-dead-server")

        monkeypatch.setattr(sys, "stdin", io.StringIO("quit\n"))
        assert main(["serve", "--checkpoint", str(store)]) == 0
        captured = capsys.readouterr()
        assert "still leased" in captured.err
        assert "restart after the lease expires" in captured.err


class TestCLICache:
    def populate(self, store, capsys, lease=None):
        args = ["train", "adult", "epsilon=0.001", "max_iter=400",
                "algorithm=mgd", "--job-id", "j1",
                "--checkpoint", str(store)]
        if lease:
            args += ["--max-iterations", str(lease)]
        assert main(args) == 0
        capsys.readouterr()

    def test_inspect_reports_jobs_and_plans(self, tmp_path, capsys):
        store = tmp_path / "jobs.json"
        self.populate(store, capsys)
        assert main(["cache", str(store)]) == 0
        out = capsys.readouterr().out
        assert "(json backend): 1 entries" in out
        assert "job checkpoints: 1 (format 1 x1)" in out
        assert "done: 1" in out

    def test_inspect_plan_store(self, tmp_path, capsys):
        plans = tmp_path / "plans.json"
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 fixed_iterations=50\n")
        assert main(["batch", str(path), "--workers", "1",
                     "--cache", str(plans)]) == 0
        capsys.readouterr()
        assert main(["cache", str(plans)]) == 0
        out = capsys.readouterr().out
        assert "plan entries: 1 (format 2 x1)" in out

    def test_compact_drops_done_jobs_and_junk(self, tmp_path, capsys):
        store = tmp_path / "jobs.json"
        self.populate(store, capsys)
        from repro.service import JsonFileBackend

        backend = JsonFileBackend(str(store))
        backend.store("junk", {"neither": "plan nor checkpoint"})
        assert main(["cache", str(store), "--compact",
                     "--drop-done-jobs"]) == 0
        out = capsys.readouterr().out
        assert "unknown entries: 1" in out
        assert "compacted: kept 0, dropped 2" in out
        assert JsonFileBackend(str(store)).load() == {}

    def test_compact_keeps_live_jobs(self, tmp_path, capsys):
        store = tmp_path / "jobs.db"
        self.populate(store, capsys, lease=50)  # preempted -> pending
        assert main(["cache", str(store), "--compact",
                     "--drop-done-jobs"]) == 0
        out = capsys.readouterr().out
        assert "preempted: 1" in out
        assert "compacted: kept 1, dropped 0" in out

    def test_missing_store_reports_error(self, tmp_path, capsys):
        assert main(["cache", str(tmp_path / "nope.json")]) == 1
        assert "no store" in capsys.readouterr().err


@pytest.mark.slow
class TestCLISubprocess:
    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro",
             "run classification on adult having epsilon 0.05, "
             "max iter 100;"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0
        assert "iterations" in proc.stdout
