"""Tests for the python -m repro command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestCLIMain:
    def test_inline_query(self, capsys):
        code = main(["run classification on adult having epsilon 0.05, "
                     "max iter 200;"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan" in out
        assert "iterations" in out

    def test_query_file(self, tmp_path, capsys):
        path = tmp_path / "q.ml4all"
        path.write_text(
            "run classification on adult having epsilon 0.05, "
            "max iter 200;"
        )
        assert main(["--file", str(path)]) == 0
        assert "chosen plan" in capsys.readouterr().out

    def test_bad_query_reports_error(self, capsys):
        code = main(["run nothing;"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_pinned_algorithm_query(self, capsys):
        code = main(["run svm on svm1 having max iter 100 using "
                     "algorithm sgd, sampler shuffle();"])
        assert code == 0


@pytest.mark.slow
class TestCLISubprocess:
    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro",
             "run classification on adult having epsilon 0.05, "
             "max iter 100;"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0
        assert "iterations" in proc.stdout
