"""Tests for the python -m repro command-line interface."""

import io
import subprocess
import sys

import pytest

from repro.__main__ import main, parse_request_line
from repro.errors import ReproError


class TestCLIMain:
    def test_inline_query(self, capsys):
        code = main(["run classification on adult having epsilon 0.05, "
                     "max iter 200;"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan" in out
        assert "iterations" in out

    def test_query_file(self, tmp_path, capsys):
        path = tmp_path / "q.ml4all"
        path.write_text(
            "run classification on adult having epsilon 0.05, "
            "max iter 200;"
        )
        assert main(["--file", str(path)]) == 0
        assert "chosen plan" in capsys.readouterr().out

    def test_bad_query_reports_error(self, capsys):
        code = main(["run nothing;"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_pinned_algorithm_query(self, capsys):
        code = main(["run svm on svm1 having max iter 100 using "
                     "algorithm sgd, sampler shuffle();"])
        assert code == 0


class TestRequestLineParsing:
    def test_dataset_plus_typed_values(self):
        request = parse_request_line(
            "adult epsilon=0.01 max_iter=200 algorithm=sgd"
        )
        assert request == {
            "dataset": "adult",
            "epsilon": 0.01,
            "max_iter": 200,
            "algorithm": "sgd",
        }

    def test_missing_dataset_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("epsilon=0.01")

    def test_malformed_pair_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("adult epsilon")

    def test_unknown_key_raises(self):
        with pytest.raises(ReproError) as err:
            parse_request_line("adult foo=bar")
        assert "epsilon" in str(err.value)  # names the valid keys

    def test_bad_value_raises(self):
        with pytest.raises(ReproError):
            parse_request_line("adult epsilon=notanumber")


class TestCLIBatch:
    def test_batch_file(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text(
            "adult epsilon=0.05 max_iter=200 fixed_iterations=80\n"
            "# a comment line\n"
            "adult epsilon=0.05 max_iter=200 fixed_iterations=80\n"
        )
        assert main(["batch", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("adult:") == 2
        assert "plan cache" in out
        assert "optimize/s" in out

    def test_batch_repeat_warms_cache(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 fixed_iterations=50\n")
        assert main(["batch", str(path), "--repeat", "3",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "[cache" in out

    def test_batch_empty_file(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("# nothing here\n")
        assert main(["batch", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_batch_unknown_dataset(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("no-such-dataset\n")
        assert main(["batch", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCLIAdaptive:
    def test_batch_train_mode_executes_plans(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        path.write_text("adult epsilon=0.05 max_iter=200\n")
        assert main(["batch", str(path), "--train", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "iterations" in out
        assert "train/s" in out

    def test_batch_adaptive_persists_calibration(self, tmp_path, capsys):
        path = tmp_path / "requests.txt"
        store = tmp_path / "calibration.json"
        path.write_text("adult epsilon=0.05 max_iter=200\n")
        assert main(["batch", str(path), "--adaptive", "--workers", "1",
                     "--calibration", str(store)]) == 0
        assert store.exists()
        out = capsys.readouterr().out
        assert "trained" in out

    def test_calibrate_subcommand(self, tmp_path, capsys):
        store = tmp_path / "calibration.json"
        assert main(["calibrate", "adult", "--epsilon", "0.05",
                     "--runs", "2", "--perturb", "bgd=0.25",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "before: calibration store: empty" in out
        assert "after: calibration store:" in out
        assert store.exists()
        # A second invocation starts from the persisted factors.
        assert main(["calibrate", "adult", "--epsilon", "0.05",
                     "--runs", "1", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "before: calibration store: empty" not in out

    def test_calibrate_rejects_bad_perturb(self, capsys):
        assert main(["calibrate", "adult", "--perturb", "nonsense"]) == 2
        assert "ALG=FACTOR" in capsys.readouterr().err

    def test_calibrate_rejects_unknown_perturb_algorithm(self, capsys):
        assert main(["calibrate", "adult", "--perturb", "bdg=0.25"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestCLIServe:
    def test_serve_loop(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                "adult epsilon=0.05 fixed_iterations=50\n"
                "adult epsilon=0.05 fixed_iterations=50\n"
                "quit\n"
            ),
        )
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert out.count("adult:") == 2
        assert "[cache" in out          # second request hit the cache
        assert "plan cache" in out

    def test_serve_recovers_from_bad_request(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(
                "bogus-dataset\n"
                "adult epsilon=0.05 fixed_iterations=50\n"
            ),
        )
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "adult:" in captured.out


@pytest.mark.slow
class TestCLISubprocess:
    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro",
             "run classification on adult having epsilon 0.05, "
             "max iter 100;"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0
        assert "iterations" in proc.stdout
