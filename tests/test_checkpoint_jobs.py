"""Durable training jobs: checkpoint store, leases, preemption, resume.

Covers the storage layer (JobCheckpoint round trips, corrupt-store
degradation, the backends' atomic update() CAS), the lease protocol
(double-run protection across threads sharing one store, expiry,
lost-lease writers), and the service-level job API (preempt -> resume
equivalence, crash simulation via a store that dies mid-write, restart
in a genuinely new process, idempotent re-submission of finished jobs).
"""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core.plans import TrainingSpec
from repro.runtime import JobBudget
from repro.service import (
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
    JobLeaseError,
    JsonFileBackend,
    MemoryBackend,
    OptimizerService,
    SqliteBackend,
)
from repro.service.checkpoint import CHECKPOINT_FORMAT

from support import FaultyBackend, make_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent


def backend_for(tmp_path, kind):
    return {
        "memory": lambda: MemoryBackend(),
        "json": lambda: JsonFileBackend(str(tmp_path / "store.json")),
        "sqlite": lambda: SqliteBackend(str(tmp_path / "store.db")),
    }[kind]()


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=600, d=8, task="logreg", spec=spec, seed=4)


@pytest.fixture
def training():
    # tolerance 1e-12 + fixed iterations: fixed-length deterministic runs.
    return TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                        max_iter=60, seed=3)


def make_service(spec, **kwargs):
    return OptimizerService(spec=spec, seed=5, **kwargs)


def run_job(spec, dataset, training, path, job_id, **kwargs):
    """One lease of a job on a fresh service instance (its own process
    stand-in: nothing shared but the store file)."""
    service = make_service(spec, checkpoint_path=path)
    return service.train(
        dataset, training, fixed_iterations=60, algorithms=("mgd",),
        job_id=job_id, **kwargs,
    )


# ---------------------------------------------------------------------------
# backend CAS
# ---------------------------------------------------------------------------
class TestBackendUpdate:
    @pytest.mark.parametrize("kind", ["memory", "json", "sqlite"])
    def test_update_read_modify_writes_one_entry(self, tmp_path, kind):
        backend = backend_for(tmp_path, kind)
        backend.store("k", {"n": 1})
        out = backend.update("k", lambda cur: {"n": cur["n"] + 1})
        assert out == {"n": 2}
        assert backend.get("k") == {"n": 2}
        # Missing key: fn sees None; returning a value inserts it.
        assert backend.update("new", lambda cur: {"was": cur}) == \
            {"was": None}
        # Returning None deletes.
        backend.update("k", lambda cur: None)
        assert backend.get("k") is None
        backend.close()

    @pytest.mark.parametrize("kind", ["memory", "json", "sqlite"])
    def test_update_raising_fn_aborts_the_mutation(self, tmp_path, kind):
        backend = backend_for(tmp_path, kind)
        backend.store("k", {"n": 1})

        def boom(cur):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            backend.update("k", boom)
        assert backend.get("k") == {"n": 1}
        backend.close()

    @pytest.mark.parametrize("kind", ["memory", "json", "sqlite"])
    def test_mutate_all_is_one_atomic_rewrite(self, tmp_path, kind):
        backend = backend_for(tmp_path, kind)
        backend.store("keep", {"n": 1})
        backend.store("drop", {"n": 2})

        def fn(entries):
            assert entries == {"keep": {"n": 1}, "drop": {"n": 2}}
            return {"keep": entries["keep"], "new": {"n": 3}}

        assert backend.mutate_all(fn) == \
            {"keep": {"n": 1}, "new": {"n": 3}}
        assert backend.load() == {"keep": {"n": 1}, "new": {"n": 3}}
        backend.close()

    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_concurrent_updates_never_lose_increments(self, tmp_path, kind):
        backend = backend_for(tmp_path, kind)
        backend.store("counter", {"n": 0})

        def bump():
            for _ in range(25):
                backend.update(
                    "counter", lambda cur: {"n": cur["n"] + 1}
                )

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert backend.get("counter") == {"n": 100}
        backend.close()


# ---------------------------------------------------------------------------
# checkpoint payloads
# ---------------------------------------------------------------------------
class TestJobCheckpoint:
    def checkpoint(self, **overrides):
        payload = dict(
            job_id="j1", status="running", fingerprint="abc",
            weights=[0.5, -1.0], state={"iteration_offset": 7},
            chosen={"plan": {"algorithm": "mgd"}}, trace={"segments": []},
            done_iterations=7, switches_left=2,
        )
        payload.update(overrides)
        return JobCheckpoint(**payload)

    def test_round_trip_through_real_json(self):
        checkpoint = self.checkpoint()
        restored = JobCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.to_dict()))
        )
        assert restored == checkpoint

    def test_future_format_is_refused(self):
        payload = self.checkpoint().to_dict()
        payload["checkpoint_format"] = CHECKPOINT_FORMAT + 1
        with pytest.raises(CheckpointError, match="format"):
            JobCheckpoint.from_dict(payload)

    def test_malformed_payload_is_refused(self):
        with pytest.raises(CheckpointError):
            JobCheckpoint.from_dict({"status": "running"})

    def test_resumable_needs_progress(self):
        assert self.checkpoint().resumable
        assert not self.checkpoint(weights=None).resumable
        assert not self.checkpoint(chosen=None).resumable


# ---------------------------------------------------------------------------
# the store: reads, corruption, leases
# ---------------------------------------------------------------------------
class TestCheckpointStore:
    @pytest.mark.parametrize("name", ["jobs.json", "jobs.db"])
    def test_save_load_survives_a_restart(self, tmp_path, name):
        path = str(tmp_path / name)
        store = CheckpointStore(path=path)
        checkpoint = JobCheckpoint(
            job_id="j", status="preempted", fingerprint="f",
            weights=[1.0, 2.0], state={"iteration_offset": 3},
            chosen={"plan": {}}, trace={"segments": []},
            done_iterations=3, switches_left=1,
        )
        store.save(checkpoint)
        store.close()
        reopened = CheckpointStore(path=path)
        restored = reopened.load("j")
        assert restored.weights == [1.0, 2.0]
        assert restored.status == "preempted"
        assert restored.written_at is not None
        assert reopened.pending() == {"j": restored}

    def test_corrupt_entry_degrades_to_fresh_job(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path / "jobs.json"))
        store.backend.store("j", {"checkpoint_format": "garbage"})
        with pytest.warns(UserWarning, match="treating the job as fresh"):
            assert store.load("j") is None
        # acquire() overwrites the corrupt entry with a fresh lease stub.
        with pytest.warns(UserWarning, match="treating the job as fresh"):
            assert store.acquire("j", "me") is None
        assert store.backend.get("j")["lease"]["owner"] == "me"

    def test_lease_blocks_second_owner(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path / "jobs.json"))
        store.acquire("j", "owner-a")
        with pytest.raises(JobLeaseError):
            store.acquire("j", "owner-b")
        # Re-entrant for the same owner, free after release.
        store.acquire("j", "owner-a")
        store.release("j", "owner-a")
        store.acquire("j", "owner-b")

    def test_expired_lease_is_reacquirable(self, tmp_path):
        clock = {"now": 1000.0}
        store = CheckpointStore(path=str(tmp_path / "jobs.json"),
                                lease_ttl_s=60.0,
                                clock=lambda: clock["now"])
        store.acquire("j", "owner-a")
        with pytest.raises(JobLeaseError):
            store.acquire("j", "owner-b")
        clock["now"] += 61.0
        store.acquire("j", "owner-b")  # the crashed owner's lease expired

    def test_save_refreshes_the_lease(self, tmp_path):
        clock = {"now": 1000.0}
        store = CheckpointStore(path=str(tmp_path / "jobs.json"),
                                lease_ttl_s=60.0,
                                clock=lambda: clock["now"])
        store.acquire("j", "owner-a")
        clock["now"] += 50.0
        store.save(JobCheckpoint(job_id="j", status="running",
                                 fingerprint="f"), owner="owner-a")
        clock["now"] += 50.0  # 100s after acquire, 50s after the save
        with pytest.raises(JobLeaseError):
            store.acquire("j", "owner-b")

    def test_zombie_writer_cannot_clobber_new_owner(self, tmp_path):
        clock = {"now": 1000.0}
        store = CheckpointStore(path=str(tmp_path / "jobs.json"),
                                lease_ttl_s=60.0,
                                clock=lambda: clock["now"])
        store.acquire("j", "owner-a")
        clock["now"] += 61.0
        store.acquire("j", "owner-b")  # took over the expired lease
        with pytest.raises(JobLeaseError, match="lost the lease"):
            store.save(JobCheckpoint(job_id="j", status="running",
                                     fingerprint="f"), owner="owner-a")

    def test_two_threads_cannot_double_run_a_job(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path / "jobs.db"))
        outcomes = []

        def contend(owner):
            try:
                store.acquire("shared", owner)
                outcomes.append("leased")
            except JobLeaseError:
                outcomes.append("blocked")

        threads = [
            threading.Thread(target=contend, args=(f"owner-{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["blocked"] * 3 + ["leased"]

    @pytest.mark.parametrize("name", ["jobs.json", "jobs.db"])
    def test_concurrent_checkpointing_keeps_the_store_intact(
        self, tmp_path, name
    ):
        """Threads checkpointing distinct jobs against one shared store
        file (the advisory-flock / BEGIN IMMEDIATE path) must neither
        corrupt it nor drop each other's entries."""
        path = str(tmp_path / name)
        store = CheckpointStore(path=path)

        def work(job):
            for step in range(1, 11):
                store.save(JobCheckpoint(
                    job_id=job, status="running", fingerprint=job,
                    weights=[float(step)], state=None,
                    chosen={"plan": {}}, trace={"segments": []},
                    done_iterations=step,
                ), owner=f"owner-{job}")

        jobs = [f"job-{i}" for i in range(6)]
        threads = [threading.Thread(target=work, args=(j,)) for j in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reopened = CheckpointStore(path=path)
        persisted = reopened.jobs()
        assert set(persisted) == set(jobs)
        for job in jobs:
            assert persisted[job].done_iterations == 10
            assert persisted[job].weights == [10.0]


# ---------------------------------------------------------------------------
# flaky storage under the lease protocol (FaultyBackend)
# ---------------------------------------------------------------------------
class TestFaultyCheckpointStore:
    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_timeout_on_acquire_leaves_no_lease_behind(self, tmp_path, kind):
        """An acquire that times out before the CAS ran must not have
        leased anything: the immediate retry gets the job."""
        inner = backend_for(tmp_path, kind)
        store = CheckpointStore(
            backend=FaultyBackend(inner, plan={"update": ["timeout"]})
        )
        with pytest.raises(TimeoutError):
            store.acquire("j", "owner-a")
        assert inner.get("j") is None      # nothing was written
        store.acquire("j", "owner-a")      # the retry leases cleanly
        assert inner.get("j")["lease"]["owner"] == "owner-a"

    def test_failed_release_leaves_the_lease_to_expire(self, tmp_path):
        """A release lost to the network keeps the lease on the books;
        the steal path (expiry) reclaims the job rather than any
        unlease-by-force."""
        clock = {"now": 1000.0}
        inner = backend_for(tmp_path, "json")
        store = CheckpointStore(
            backend=FaultyBackend(inner, plan={"update": [None, "reset"]}),
            lease_ttl_s=60.0, clock=lambda: clock["now"],
        )
        store.acquire("j", "owner-a")
        with pytest.raises(ConnectionResetError):
            store.release("j", "owner-a")
        assert inner.get("j")["lease"]["owner"] == "owner-a"  # still held
        with pytest.raises(JobLeaseError):
            store.acquire("j", "owner-b")
        clock["now"] += 61.0
        store.acquire("j", "owner-b")      # expiry, not force, frees it

    def test_ambiguous_checkpoint_ack_resumes_bit_identically(
        self, spec, dataset, training, tmp_path
    ):
        """The fail-after-write crash: the third cadence checkpoint
        lands but the writer dies believing it failed.  The resume must
        pick up from that checkpoint and end bit-identical -- the same
        guarantee the KillingStore test pins, but with the failure
        injected *under* the store, in the backend transport."""
        baseline = run_job(
            spec, dataset, training, str(tmp_path / "base.json"), "u"
        )
        path = str(tmp_path / "jobs.json")
        faulty = FaultyBackend(
            JsonFileBackend(path),
            # update #1 is the acquire; #2-#4 the cadence saves at
            # iterations 7/14/21; the last one lands then "fails".
            plan={"update": [None, None, None, "fail_after_write"]},
        )
        service = make_service(
            spec, checkpoint_store=CheckpointStore(backend=faulty)
        )
        with pytest.raises(ConnectionResetError):
            service.train(dataset, training, fixed_iterations=60,
                          algorithms=("mgd",), job_id="flaky",
                          checkpoint_every=7)
        assert ("update", "fail_after_write") in faulty.injected

        survivor = CheckpointStore(path=path).load("flaky")
        assert survivor.done_iterations == 21  # the ambiguous write landed
        resumed = run_job(spec, dataset, training, path, "flaky")
        assert resumed.job.resumed
        assert resumed.job.status == "done"
        assert np.array_equal(baseline.weights, resumed.weights)
        assert baseline.trace.all_deltas == resumed.trace.all_deltas


# ---------------------------------------------------------------------------
# service-level jobs
# ---------------------------------------------------------------------------
class TestServiceJobs:
    def test_job_needs_a_store(self, spec, dataset, training):
        service = make_service(spec)
        with pytest.raises(CheckpointError, match="checkpoint store"):
            service.train(dataset, training, job_id="j")

    @pytest.mark.parametrize("name", ["jobs.json", "jobs.db"])
    def test_preempt_resume_in_fresh_service_is_bit_identical(
        self, spec, dataset, training, tmp_path, name
    ):
        baseline = run_job(
            spec, dataset, training, str(tmp_path / ("base-" + name)), "u"
        )
        assert baseline.job.status == "done"

        path = str(tmp_path / name)
        first = run_job(spec, dataset, training, path, "sliced",
                        checkpoint_every=10,
                        budget=JobBudget(max_iterations=23))
        assert first.job.preempted
        assert first.job.done_iterations == 23
        assert first.result.stopped_by_monitor

        second = run_job(spec, dataset, training, path, "sliced")
        assert second.job.resumed
        assert second.job.status == "done"
        assert np.array_equal(baseline.weights, second.weights)
        assert baseline.trace.all_deltas == second.trace.all_deltas

    def test_resume_does_not_respeculate(self, spec, dataset, tmp_path):
        # Real speculation (no fixed_iterations) on the first lease; the
        # resume must restore the report from the checkpoint, not pay
        # for speculation again.
        from repro.core.iterations import (
            SpeculationSettings,
            SpeculativeEstimator,
        )

        training = TrainingSpec(task="logreg", tolerance=1e-6, max_iter=60,
                                seed=3)
        speculation = SpeculationSettings(
            sample_size=200, time_budget_s=0.5, max_speculation_iters=400
        )
        path = str(tmp_path / "jobs.json")
        first = OptimizerService(
            spec=spec, seed=5, speculation=speculation, checkpoint_path=path
        ).train(dataset, training, job_id="spec",
                budget=JobBudget(max_iterations=10))
        assert first.job.preempted

        calls = []
        original = SpeculativeEstimator.estimate_all

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        resumed_service = OptimizerService(
            spec=spec, seed=5, speculation=speculation, checkpoint_path=path
        )
        try:
            SpeculativeEstimator.estimate_all = counting
            second = resumed_service.train(dataset, training, job_id="spec")
        finally:
            SpeculativeEstimator.estimate_all = original
        assert second.job.status == "done"
        assert not calls  # zero speculation on resume
        assert second.optimization.cache_hit
        assert str(second.report.chosen_plan) == str(first.report.chosen_plan)

    def test_budget_dividing_the_job_exactly_still_finishes(
        self, spec, dataset, training, tmp_path
    ):
        """A lease whose budget runs out exactly on the job's final
        iteration has *finished* the job: it must stamp 'done', and the
        next submission must not run a 61st iteration."""
        baseline = run_job(
            spec, dataset, training, str(tmp_path / "base.json"), "u"
        )
        path = str(tmp_path / "jobs.json")
        outcome = None
        for lease in range(1, 4):  # 3 x 20 == the 60-iteration job
            outcome = run_job(spec, dataset, training, path, "exact",
                              budget=JobBudget(max_iterations=20))
            assert outcome.job.done_iterations == lease * 20
        assert not outcome.job.preempted
        assert outcome.job.status == "done"
        again = run_job(spec, dataset, training, path, "exact",
                        budget=JobBudget(max_iterations=20))
        assert again.job.already_done
        assert again.job.done_iterations == 60  # no 61st iteration
        assert np.array_equal(baseline.weights, outcome.weights)
        assert baseline.trace.all_deltas == outcome.trace.all_deltas

    def test_many_small_leases_equal_one_run(self, spec, dataset, training,
                                             tmp_path):
        baseline = run_job(
            spec, dataset, training, str(tmp_path / "base.json"), "u"
        )
        path = str(tmp_path / "sliced.json")
        leases = 0
        while True:
            outcome = run_job(spec, dataset, training, path, "sliced",
                              checkpoint_every=5,
                              budget=JobBudget(max_iterations=7))
            leases += 1
            if not outcome.job.preempted:
                break
            assert leases < 30, "job never finished"
        assert leases == 9  # ceil(60 / 7)
        assert np.array_equal(baseline.weights, outcome.weights)
        assert baseline.trace.all_deltas == outcome.trace.all_deltas

    def test_crash_between_checkpoints_resumes_from_last_one(
        self, spec, dataset, training, tmp_path
    ):
        """A hard kill (the store dies mid-write, taking the process
        with it) loses the work since the last checkpoint but nothing
        else: the resumed run replays it and ends bit-identical."""

        class Killed(RuntimeError):
            pass

        class KillingStore(CheckpointStore):
            def __init__(self, kill_after, **kwargs):
                super().__init__(**kwargs)
                self.saves = 0
                self.kill_after = kill_after

            def save(self, checkpoint, owner=None):
                super().save(checkpoint, owner=owner)
                self.saves += 1
                if self.saves >= self.kill_after:
                    raise Killed("simulated crash")

        baseline = run_job(
            spec, dataset, training, str(tmp_path / "base.json"), "u"
        )
        path = str(tmp_path / "jobs.json")
        killer = KillingStore(3, path=path)
        service = make_service(spec, checkpoint_store=killer)
        with pytest.raises(Killed):
            service.train(dataset, training, fixed_iterations=60,
                          algorithms=("mgd",), job_id="crashy",
                          checkpoint_every=7)

        survivor = CheckpointStore(path=path).load("crashy")
        assert survivor.status == "running"
        assert survivor.done_iterations == 21  # 3 cadence saves x 7
        assert survivor.lease is None  # the dying lease was released

        resumed = run_job(spec, dataset, training, path, "crashy")
        assert resumed.job.resumed
        assert np.array_equal(baseline.weights, resumed.weights)
        assert baseline.trace.all_deltas == resumed.trace.all_deltas

    def test_unusable_plan_entry_degrades_to_reoptimize(
        self, spec, dataset, training, tmp_path
    ):
        """A resume whose checkpointed pricing decision no longer
        decodes (future ENTRY_FORMAT, corruption) must still resume the
        training from the checkpoint -- bit-identically -- and fall
        back to re-optimizing for the report instead of serving None
        (which used to crash summary())."""
        baseline = run_job(
            spec, dataset, training, str(tmp_path / "base.json"), "u"
        )
        path = str(tmp_path / "jobs.json")
        run_job(spec, dataset, training, path, "hurt",
                budget=JobBudget(max_iterations=20))
        store = CheckpointStore(path=path)
        checkpoint = store.load("hurt")
        checkpoint.plan_entry["entry_format"] = 999
        store.save(checkpoint)

        with pytest.warns(UserWarning, match="re-optimizing"):
            resumed = run_job(spec, dataset, training, path, "hurt")
        assert resumed.job.status == "done"
        assert resumed.report is not None
        assert "done" in resumed.summary()  # the old crash site
        assert np.array_equal(baseline.weights, resumed.weights)
        assert baseline.trace.all_deltas == resumed.trace.all_deltas

    def test_resume_preserves_the_entry_stamp_and_age(
        self, spec, dataset, training, tmp_path
    ):
        """A resume must carry the checkpointed pricing entry verbatim:
        re-stamping it with the live calibration digest would mislabel
        stale pricing as current, and re-stamping written_at would
        rejuvenate an entry the disk-tier TTL should age out."""
        path = str(tmp_path / "jobs.json")
        run_job(spec, dataset, training, path, "stamped",
                budget=JobBudget(max_iterations=20))
        store = CheckpointStore(path=path)
        original = store.load("stamped").plan_entry
        original_digest = original["calibration_digest"]
        original_written = original["written_at"]

        resumed_service = make_service(spec, checkpoint_path=path)
        # The live calibration state drifts before the resume.
        resumed_service.calibration.observe("mgd", spec, cost_ratio=2.0)
        assert resumed_service.calibration.state_digest() != original_digest
        outcome = resumed_service.train(
            dataset, training, fixed_iterations=60, algorithms=("mgd",),
            job_id="stamped",
        )
        assert outcome.job.status == "done"
        final = CheckpointStore(path=path).load("stamped").plan_entry
        assert final["calibration_digest"] == original_digest
        assert final["written_at"] == original_written

    def test_resume_pins_the_checkpointed_adaptive_mode(
        self, spec, dataset, training, tmp_path
    ):
        path = str(tmp_path / "jobs.json")
        service = make_service(spec, checkpoint_path=path)
        service.train(dataset, training, fixed_iterations=60,
                      algorithms=("mgd",), job_id="modal", adaptive=True,
                      budget=JobBudget(max_iterations=20))
        assert CheckpointStore(path=path).load("modal").adaptive

        # Resuming with the flag forgotten: the job's own mode wins
        # (half-applying non-adaptive would keep the persisted switch
        # allowance monitoring while feeding no calibration).
        with pytest.warns(UserWarning, match="resuming with that mode"):
            outcome = run_job(spec, dataset, training, path, "modal")
        assert outcome.job.status == "done"
        assert outcome.adaptive is not None  # ran adaptively after all

    def test_finished_job_resubmission_is_idempotent(
        self, spec, dataset, training, tmp_path
    ):
        path = str(tmp_path / "jobs.json")
        first = run_job(spec, dataset, training, path, "once")
        again = run_job(spec, dataset, training, path, "once")
        assert again.job.already_done
        assert again.job.status == "done"
        assert np.array_equal(first.weights, again.weights)
        # Nothing executed: the fresh service never built an optimizer.
        assert again.trace.total_iterations == first.trace.total_iterations

    def test_job_id_is_bound_to_its_workload(self, spec, dataset, training,
                                             tmp_path):
        path = str(tmp_path / "jobs.json")
        run_job(spec, dataset, training, path, "bound",
                budget=JobBudget(max_iterations=10))
        other = TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                             max_iter=60, seed=99)
        with pytest.raises(CheckpointError, match="different workload"):
            run_job(spec, dataset, other, path, "bound")

    def test_concurrent_leases_of_one_job_do_not_double_run(
        self, spec, dataset, training, tmp_path
    ):
        path = str(tmp_path / "jobs.db")
        barrier = threading.Barrier(2)
        outcomes = []

        def lease():
            barrier.wait()
            try:
                outcome = run_job(spec, dataset, training, path, "hot",
                                  budget=JobBudget(max_iterations=40))
                outcomes.append(("ran", outcome.job.done_iterations))
            except JobLeaseError:
                outcomes.append(("blocked", None))

        threads = [threading.Thread(target=lease) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        kinds = sorted(kind for kind, _ in outcomes)
        assert kinds == ["blocked", "ran"]
        # The blocked caller retries once the lease is free and finishes
        # the job from the winner's checkpoint.
        final = run_job(spec, dataset, training, path, "hot")
        assert final.job.status == "done"
        assert final.job.done_iterations == 60

    def test_lease_seconds_budget_preempts(self, spec, dataset, tmp_path):
        # A wall-clock budget so tight the first iteration exceeds it:
        # the lease must stop gracefully (not crash) with progress saved.
        training = TrainingSpec(task="logreg", step_size=1.0,
                                tolerance=1e-12, max_iter=60, seed=3)
        outcome = run_job(spec, dataset, training,
                          str(tmp_path / "jobs.json"), "slow",
                          budget=JobBudget(max_seconds=1e-9))
        assert outcome.job.preempted
        assert outcome.job.done_iterations >= 1


# ---------------------------------------------------------------------------
# resume in a genuinely new process (the acceptance scenario)
# ---------------------------------------------------------------------------
RESUME_SCRIPT = """
import sys

import numpy as np

from repro.cluster import ClusterSpec
from repro.core.plans import TrainingSpec
from repro.service import OptimizerService

from support import make_dataset

path, weights_out, deltas_out = sys.argv[1:4]
spec = ClusterSpec(jitter_sigma=0.0)
dataset = make_dataset(n_phys=600, d=8, task="logreg", spec=spec, seed=4)
training = TrainingSpec(task="logreg", step_size=1.0, tolerance=1e-12,
                        max_iter=60, seed=3)
service = OptimizerService(spec=spec, seed=5, checkpoint_path=path)
outcome = service.train(dataset, training, fixed_iterations=60,
                        algorithms=("mgd",), job_id="xproc")
assert outcome.job.resumed, outcome.job
assert outcome.job.status == "done", outcome.job
np.save(weights_out, outcome.weights)
np.save(deltas_out, np.asarray(outcome.trace.all_deltas))
"""


class TestNewProcessResume:
    @pytest.mark.parametrize("name", ["jobs.json", "jobs.db"])
    def test_killed_job_resumes_bit_identically_across_processes(
        self, spec, dataset, training, tmp_path, name
    ):
        baseline = run_job(
            spec, dataset, training, str(tmp_path / ("b-" + name)), "u"
        )
        path = str(tmp_path / name)
        first = run_job(spec, dataset, training, path, "xproc",
                        checkpoint_every=10,
                        budget=JobBudget(max_iterations=31))
        assert first.job.preempted

        weights_out = str(tmp_path / "weights.npy")
        deltas_out = str(tmp_path / "deltas.npy")
        env = {
            "PYTHONPATH": (
                f"{REPO_ROOT / 'src'}:{REPO_ROOT / 'tests'}"
            ),
            "PATH": "/usr/bin:/bin",
        }
        proc = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT, path, weights_out,
             deltas_out],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert np.array_equal(baseline.weights, np.load(weights_out))
        np.testing.assert_array_equal(
            np.asarray(baseline.trace.all_deltas), np.load(deltas_out)
        )


# ---------------------------------------------------------------------------
# disk-tier TTL hygiene (ROADMAP item riding along with the job store)
# ---------------------------------------------------------------------------
class TestPlanStoreAging:
    def make(self, spec, **kwargs):
        from repro.core.iterations import SpeculationSettings

        kwargs.setdefault("speculation", SpeculationSettings(
            sample_size=200, time_budget_s=0.5, max_speculation_iters=400
        ))
        return OptimizerService(spec=spec, seed=5, **kwargs)

    def age_entry(self, path, seconds):
        backend = JsonFileBackend(path)
        entries = backend.load()
        for key, payload in entries.items():
            payload["written_at"] = time.time() - seconds
            backend.store(key, payload)
        return list(entries)

    def test_warm_load_ages_out_old_entries(self, spec, dataset, tmp_path):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        path = str(tmp_path / "plans.json")
        first = self.make(spec, cache_path=path)
        first.optimize(dataset, training)
        first.close()
        (key,) = self.age_entry(path, seconds=10_000)

        aged = self.make(spec, cache_path=path, store_ttl_s=3600)
        assert aged.warm_loaded == 0
        assert aged.expired_persisted == 1
        # Aged out means *deleted*, not skipped: the disk tier no longer
        # holds the entry at all.
        assert JsonFileBackend(path).get(key) is None

        fresh = self.make(spec, cache_path=path, store_ttl_s=None)
        assert fresh.warm_loaded == 0  # gone for TTL-free readers too

    def test_read_through_ages_out_old_entries(self, spec, dataset,
                                               tmp_path):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        path = str(tmp_path / "plans.json")
        first = self.make(spec, cache_path=path)
        computed = first.optimize(dataset, training)
        first.close()
        self.age_entry(path, seconds=10_000)

        service = self.make(spec, cache_path=path, store_ttl_s=3600)
        # Not warm-loaded (aged), so this is a read-through miss; the
        # entry must not be served and the workload computes cold.
        result = service.optimize(dataset, training)
        assert not result.cache_hit
        assert not result.recalibrated
        assert str(result.chosen_plan) == str(computed.chosen_plan)

    def test_unstamped_entries_never_age(self, spec, dataset, tmp_path):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        path = str(tmp_path / "plans.json")
        first = self.make(spec, cache_path=path)
        first.optimize(dataset, training)
        first.close()
        backend = JsonFileBackend(path)
        for key, payload in backend.load().items():
            del payload["written_at"]  # a pre-hygiene store
            backend.store(key, payload)

        service = self.make(spec, cache_path=path, store_ttl_s=1)
        assert service.warm_loaded == 1
        assert service.expired_persisted == 0
