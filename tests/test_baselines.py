"""Unit tests for the baseline systems."""

import numpy as np
import pytest

from repro.baselines import (
    BismarckBaseline,
    MLlibBaseline,
    SystemMLBaseline,
    run_spark_direct,
)
from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.plans import GDPlan, TrainingSpec

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=1000, d=10, sim_n=200_000, task="linreg",
                        spec=spec, noise=0.01, seed=2)


@pytest.fixture
def training():
    return TrainingSpec(task="linreg", step_size="constant:0.1",
                        tolerance=1e-4, max_iter=300, seed=1)


class TestMLlib:
    def test_runs_and_converges(self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        result = MLlibBaseline().train(engine, dataset, training, "bgd")
        assert result.ok
        assert result.converged
        assert result.sim_seconds > 0
        assert result.weights is not None

    def test_slower_than_ml4all_bgd(self, spec, dataset, training):
        from repro.core.executor import execute_plan

        e1 = SimulatedCluster(spec, seed=0)
        mllib = MLlibBaseline().train(e1, dataset, training, "bgd")
        e2 = SimulatedCluster(spec, seed=0)
        ml4all = execute_plan(e2, dataset, GDPlan("bgd"), training)
        # treeAggregate barriers + JVM cpu factor + Bernoulli make MLlib
        # strictly slower per iteration; iterations match (same math).
        assert mllib.sim_seconds / max(mllib.iterations, 1) > \
            ml4all.sim_seconds / max(ml4all.iterations, 1)

    def test_sgd_scans_everything_every_iteration(self, spec, dataset,
                                                  training):
        engine = SimulatedCluster(spec, seed=0)
        result = MLlibBaseline().train(engine, dataset, training, "sgd")
        rows = engine.metrics.phase("compute").rows_processed
        # Bernoulli sampling reads all simulated rows per iteration.
        assert rows >= dataset.stats.n * result.iterations * 0.9

    def test_lineage_recompute_when_cache_too_small(self, dataset, training):
        tiny = ClusterSpec(jitter_sigma=0.0, cache_bytes=1024 ** 2)
        big = ClusterSpec(jitter_sigma=0.0)
        t_tiny = MLlibBaseline().train(
            SimulatedCluster(tiny, seed=0), dataset, training, "bgd"
        )
        t_big = MLlibBaseline().train(
            SimulatedCluster(big, seed=0), dataset, training, "bgd"
        )
        assert t_tiny.sim_seconds > t_big.sim_seconds * 2

    def test_timeout_cell(self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        result = MLlibBaseline().train(
            engine, dataset, training, "bgd", time_limit_s=0.5
        )
        assert result.failed == "timeout"
        assert result.cell().startswith(">")


class TestSystemML:
    def test_conversion_charged_separately(self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        result = SystemMLBaseline().train(engine, dataset, training, "bgd")
        assert result.ok
        assert result.conversion_s > 0
        assert result.conversion_s < result.sim_seconds

    def test_oom_on_large_dense(self, spec, training):
        ds = make_dataset(n_phys=500, d=100, sim_n=50_000_000, spec=spec,
                          task="linreg", seed=1)
        assert ds.stats.binary_bytes > SystemMLBaseline.oom_dense_bytes
        engine = SimulatedCluster(spec, seed=0)
        result = SystemMLBaseline().train(engine, ds, training, "bgd")
        assert result.failed == "OOM"
        assert result.cell() == "OOM"

    def test_sparse_data_not_oomed(self, spec, training):
        ds = make_dataset(n_phys=500, d=1000, sim_n=50_000_000,
                          density=0.001, sparse=True, spec=spec,
                          task="logreg", seed=1)
        training = TrainingSpec(task="logreg", tolerance=1e-4, max_iter=5,
                                seed=1)
        engine = SimulatedCluster(spec, seed=0)
        result = SystemMLBaseline().train(engine, ds, training, "bgd")
        assert result.ok

    def test_local_mode_fast_for_small_data(self, spec, dataset, training):
        """Paper: SystemML beats everyone on small data (local mode)."""
        engine = SimulatedCluster(spec, seed=0)
        sysml = SystemMLBaseline().train(engine, dataset, training, "bgd")
        engine2 = SimulatedCluster(spec, seed=0)
        mllib = MLlibBaseline().train(engine2, dataset, training, "bgd")
        assert sysml.sim_seconds < mllib.sim_seconds


class TestBismarck:
    def test_runs_small_data(self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        result = BismarckBaseline().train(engine, dataset, training, "mgd",
                                          batch_size=100)
        assert result.ok

    def test_oom_high_dimensional_batch(self, spec, training):
        # batch units x d x 8 bytes > 2 GB driver memory.
        ds = make_dataset(n_phys=200, d=50_000, sim_n=200_000,
                          density=0.001, sparse=True, spec=spec,
                          task="logreg", seed=1)
        training = TrainingSpec(task="logreg", tolerance=1e-4, max_iter=5,
                                seed=1)
        engine = SimulatedCluster(spec, seed=0)
        result = BismarckBaseline().train(engine, ds, training, "mgd",
                                          batch_size=10_000)
        assert result.failed == "OOM"

    def test_oom_full_batch_large_n(self, spec, training):
        ds = make_dataset(n_phys=500, d=100, sim_n=5_000_000, spec=spec,
                          task="linreg", seed=1)
        engine = SimulatedCluster(spec, seed=0)
        result = BismarckBaseline().train(engine, ds, training, "bgd")
        assert result.failed == "OOM"

    def test_oom_happens_before_any_simulated_work(self, spec, training):
        ds = make_dataset(n_phys=500, d=100, sim_n=5_000_000, spec=spec,
                          task="linreg", seed=1)
        engine = SimulatedCluster(spec, seed=0)
        result = BismarckBaseline().train(engine, ds, training, "bgd")
        assert result.sim_seconds == 0.0


class TestSparkDirect:
    def test_matches_ml4all_within_dispatch_overhead(self, spec, dataset,
                                                     training):
        from repro.core.executor import execute_plan

        plan = GDPlan("mgd", "eager", "shuffle", 100)
        e1 = SimulatedCluster(spec, seed=0)
        spark = run_spark_direct(e1, dataset, plan, training)
        e2 = SimulatedCluster(spec, seed=0)
        ml4all = execute_plan(e2, dataset, plan, training)
        assert ml4all.iterations == spark.iterations
        overhead = (ml4all.sim_seconds - spark.sim_seconds) \
            / max(spark.sim_seconds, 1e-9)
        assert 0 <= overhead < 0.05

    def test_engine_spec_restored_after_run(self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        original = engine.spec
        run_spark_direct(engine, dataset, GDPlan("bgd"), training)
        assert engine.spec is original
