"""Integration tests for the cost-based optimizer."""

import pytest

from repro.core.executor import execute_plan
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.core.plan_space import enumerate_plans
from repro.core.plans import TrainingSpec
from repro.errors import ConstraintError

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=2000, d=20, task="logreg", spec=spec, seed=3,
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02,
    )


@pytest.fixture
def estimator():
    return SpeculativeEstimator(
        SpeculationSettings(sample_size=400, time_budget_s=0.5,
                            max_speculation_iters=800),
        seed=5,
    )


@pytest.fixture
def optimizer(engine, estimator):
    return GDOptimizer(engine, estimator=estimator)


class TestOptimize:
    def test_costs_all_eleven_plans(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        assert len(report.candidates) == 11
        labels = {str(c.plan) for c in report.candidates}
        assert "BGD" in labels
        assert "SGD-lazy-shuffle" in labels

    def test_chosen_is_cheapest_feasible(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        feasible = [c for c in report.candidates if c.feasible]
        assert report.chosen.total_s == min(c.total_s for c in feasible)

    def test_fixed_iterations_skips_speculation(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training, fixed_iterations=500)
        assert report.iteration_estimates is None
        assert all(c.estimated_iterations == 500 for c in report.candidates)
        # "optimization time of less than 100 msec when just the number
        # of iterations is given" -- generous CI margin.
        assert report.optimizer_wall_s < 1.0

    def test_speculation_populates_estimates(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        assert set(report.iteration_estimates) == {"bgd", "mgd", "sgd"}
        assert report.speculation_sim_s > 0

    def test_time_constraint_filters_plans(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                time_budget_s=1e9, seed=1)
        report = optimizer.optimize(dataset, training)
        assert all(c.feasible for c in report.candidates)

    def test_impossible_time_constraint_raises(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                time_budget_s=1e-9, seed=1)
        with pytest.raises(ConstraintError) as err:
            optimizer.optimize(dataset, training)
        # Appendix A: the system names the constraint to revisit.
        assert "time" in str(err.value)

    def test_estimates_capped_by_max_iter(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-6, max_iter=50,
                                seed=1)
        report = optimizer.optimize(dataset, training)
        assert all(c.estimated_iterations <= 50 for c in report.candidates)

    def test_restricted_algorithm_set(self, engine, estimator, dataset):
        optimizer = GDOptimizer(engine, estimator=estimator,
                                algorithms=("bgd",))
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        assert len(report.candidates) == 1
        assert str(report.chosen_plan) == "BGD"

    def test_report_summary_renders(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        text = report.summary()
        assert "chosen plan" in text
        assert "candidates" in text

    def test_ranking_sorted(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
        report = optimizer.optimize(dataset, training)
        ranked = report.ranking()
        totals = [c.total_s for c in ranked if c.feasible]
        assert totals == sorted(totals)


class TestTrain:
    def test_train_executes_chosen_plan(self, optimizer, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                max_iter=2000, seed=1)
        report, result = optimizer.train(dataset, training)
        assert result.plan == report.chosen_plan
        assert result.iterations >= 1

    def test_optimizer_avoids_worst_plan(self, spec, engine, estimator,
                                         dataset):
        """The database-optimizer property: never pick the worst plan."""
        from repro.cluster import SimulatedCluster

        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                max_iter=1500, seed=1)
        times = {}
        for plan in enumerate_plans(batch_sizes={"mgd": 100}):
            e = SimulatedCluster(spec, seed=9)
            times[plan.label] = execute_plan(e, dataset, plan,
                                             training).sim_seconds
        optimizer = GDOptimizer(engine, estimator=estimator,
                                batch_sizes={"mgd": 100})
        report, result = optimizer.train(dataset, training)
        worst = max(times.values())
        best = min(times.values())
        assert result.sim_seconds < worst * 0.6 or worst < best * 1.5
