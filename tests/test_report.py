"""Unit tests for experiment tables and the experiment context."""

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table


@pytest.fixture
def table():
    return Table(
        experiment="Figure X",
        title="demo",
        columns=["dataset", "time_s", "winner"],
        rows=[
            {"dataset": "adult", "time_s": 1.5, "winner": "sgd"},
            {"dataset": "covtype", "time_s": 12000.0, "winner": "bgd"},
            {"dataset": "rcv1", "time_s": None, "winner": "sgd"},
        ],
        notes=["a note"],
    )


class TestTable:
    def test_render_contains_all_cells(self, table):
        text = table.render()
        assert "Figure X" in text
        assert "adult" in text
        assert "1.50" in text
        assert "12,000" in text
        assert "a note" in text

    def test_none_rendered_as_dash(self, table):
        assert "-" in table.render()

    def test_markdown_structure(self, table):
        md = table.to_markdown()
        assert md.startswith("### Figure X")
        assert "| dataset | time_s | winner |" in md
        separator_rows = [line for line in md.splitlines()
                          if line.startswith("|---")]
        assert len(separator_rows) == 1

    def test_column_accessor(self, table):
        assert table.column("winner") == ["sgd", "bgd", "sgd"]

    def test_row_for(self, table):
        row = table.row_for(dataset="covtype")
        assert row["winner"] == "bgd"

    def test_row_for_missing(self, table):
        with pytest.raises(KeyError):
            table.row_for(dataset="higgs")

    def test_small_float_formatting(self):
        table = Table("T", "t", ["v"], [{"v": 0.000123}])
        assert "0.000123" in table.render()

    def test_empty_rows_render(self):
        table = Table("T", "t", ["a", "b"], [])
        assert "T" in table.render()


class TestExperimentContext:
    def test_quick_subset(self):
        ctx = ExperimentContext(quick=True)
        assert "adult" in ctx.datasets
        assert len(ctx.datasets) < 8

    def test_full_covers_paper_order(self):
        ctx = ExperimentContext(quick=False)
        assert len(ctx.datasets) == 8

    def test_dataset_cache_reuses_objects(self):
        ctx = ExperimentContext(quick=True)
        a = ctx.dataset("adult")
        b = ctx.dataset("adult")
        assert a is b

    def test_engines_are_fresh(self):
        ctx = ExperimentContext(quick=True)
        e1 = ctx.engine()
        e2 = ctx.engine()
        assert e1 is not e2
        e1.charge(1.0, "x")
        assert e2.clock == 0.0

    def test_tolerances(self):
        ctx = ExperimentContext()
        assert ctx.tolerance("yearpred") == 0.1
        assert ctx.tolerance("rcv1") == 0.01
        assert ctx.tolerance("adult") == 0.001
        assert ctx.tolerance("unknown") == 0.001

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert not ExperimentContext.from_env().quick
        monkeypatch.setenv("REPRO_FULL", "0")
        assert ExperimentContext.from_env().quick
