"""Unit tests for the Table 3 gradient functions.

Every gradient is checked against numerical differentiation of its loss,
for dense and sparse inputs -- the invariant that makes everything else
trustworthy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse as sp

from repro.errors import PlanError
from repro.gd.gradients import (
    HingeGradient,
    L2Regularized,
    LinearRegressionGradient,
    LogisticGradient,
    named_gradient,
    task_gradient,
)

RNG = np.random.default_rng(0)


def numerical_gradient(gradient, w, X, y, h=1e-6):
    grad = np.zeros_like(w)
    for j in range(len(w)):
        wp, wm = w.copy(), w.copy()
        wp[j] += h
        wm[j] -= h
        grad[j] = (gradient.loss(wp, X, y) - gradient.loss(wm, X, y)) / (2 * h)
    return grad


def _data(n=40, d=6, seed=1, labels="sign"):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if labels == "sign":
        y = np.where(rng.random(n) < 0.5, 1.0, -1.0)
    else:
        y = rng.normal(size=n)
    return X, y


class TestLinearRegression:
    def test_gradient_matches_numerical(self):
        X, y = _data(labels="real")
        g = LinearRegressionGradient()
        w = RNG.normal(size=X.shape[1])
        np.testing.assert_allclose(
            g.gradient(w, X, y), numerical_gradient(g, w, X, y), atol=1e-4
        )

    def test_zero_residual_zero_gradient(self):
        X, _ = _data(labels="real")
        w = RNG.normal(size=X.shape[1])
        y = X @ w
        g = LinearRegressionGradient()
        np.testing.assert_allclose(g.gradient(w, X, y), 0.0, atol=1e-12)

    def test_predict_is_linear(self):
        X, _ = _data(labels="real")
        w = RNG.normal(size=X.shape[1])
        g = LinearRegressionGradient()
        np.testing.assert_allclose(g.predict(w, X), X @ w)

    def test_loss_is_mse(self):
        X, y = _data(labels="real")
        w = np.zeros(X.shape[1])
        g = LinearRegressionGradient()
        assert g.loss(w, X, y) == pytest.approx(np.mean(y ** 2))


class TestLogistic:
    def test_gradient_matches_numerical(self):
        X, y = _data()
        g = LogisticGradient()
        w = RNG.normal(size=X.shape[1]) * 0.5
        np.testing.assert_allclose(
            g.gradient(w, X, y), numerical_gradient(g, w, X, y), atol=1e-4
        )

    def test_gradient_stable_for_large_margins(self):
        X, y = _data()
        w = RNG.normal(size=X.shape[1]) * 1000
        g = LogisticGradient()
        grad = g.gradient(w, X, y)
        assert np.all(np.isfinite(grad))
        assert np.isfinite(g.loss(w, X, y))

    def test_loss_at_zero_is_log2(self):
        X, y = _data()
        g = LogisticGradient()
        assert g.loss(np.zeros(X.shape[1]), X, y) == pytest.approx(np.log(2))

    def test_predict_signs(self):
        X, _ = _data()
        w = RNG.normal(size=X.shape[1])
        g = LogisticGradient()
        pred = g.predict(w, X)
        assert set(np.unique(pred)) <= {-1.0, 1.0}
        np.testing.assert_array_equal(pred, np.where(X @ w >= 0, 1.0, -1.0))


class TestHinge:
    def test_gradient_matches_numerical_away_from_kink(self):
        X, y = _data()
        g = HingeGradient()
        w = RNG.normal(size=X.shape[1]) * 0.5
        margins = y * (X @ w)
        if np.any(np.abs(margins - 1.0) < 1e-4):
            pytest.skip("sampled a kink point")
        np.testing.assert_allclose(
            g.gradient(w, X, y), numerical_gradient(g, w, X, y), atol=1e-4
        )

    def test_zero_gradient_when_margins_satisfied(self):
        X, _ = _data()
        w = RNG.normal(size=X.shape[1])
        y = np.sign(X @ w)
        big_w = w * 1000  # all margins >> 1
        g = HingeGradient()
        np.testing.assert_allclose(g.gradient(big_w, X, y), 0.0)
        assert g.loss(big_w, X, y) == 0.0

    def test_violators_contribute(self):
        X, _ = _data()
        w = RNG.normal(size=X.shape[1])
        y = -np.sign(X @ w)  # everything misclassified
        g = HingeGradient()
        assert np.abs(g.gradient(w, X, y)).sum() > 0

    def test_table3_form_single_point(self):
        g = HingeGradient()
        x = np.array([[1.0, 2.0]])
        w = np.array([0.1, 0.1])
        y = np.array([1.0])
        # margin 0.3 < 1 -> gradient -y*x
        np.testing.assert_allclose(g.gradient(w, x, y), -x[0])
        # margin > 1 -> zero
        w_big = np.array([10.0, 10.0])
        np.testing.assert_allclose(g.gradient(w_big, x, y), 0.0)


class TestL2Regularized:
    def test_gradient_adds_lam_w(self):
        X, y = _data()
        base = LogisticGradient()
        reg = L2Regularized(base, lam=0.5)
        w = RNG.normal(size=X.shape[1])
        np.testing.assert_allclose(
            reg.gradient(w, X, y), base.gradient(w, X, y) + 0.5 * w
        )

    def test_loss_adds_ridge_term(self):
        X, y = _data()
        base = LogisticGradient()
        reg = L2Regularized(base, lam=0.5)
        w = RNG.normal(size=X.shape[1])
        assert reg.loss(w, X, y) == pytest.approx(
            base.loss(w, X, y) + 0.25 * float(w @ w)
        )

    def test_matches_numerical(self):
        X, y = _data()
        reg = L2Regularized(LogisticGradient(), lam=0.1)
        w = RNG.normal(size=X.shape[1]) * 0.3
        np.testing.assert_allclose(
            reg.gradient(w, X, y), numerical_gradient(reg, w, X, y),
            atol=1e-4,
        )

    def test_negative_lambda_rejected(self):
        with pytest.raises(PlanError):
            L2Regularized(LogisticGradient(), lam=-1)


class TestSparseInputs:
    @pytest.mark.parametrize("gradient_cls", [
        LinearRegressionGradient, LogisticGradient, HingeGradient,
    ])
    def test_sparse_matches_dense(self, gradient_cls):
        X, y = _data(n=60, d=20, seed=3)
        X[np.abs(X) < 0.8] = 0.0
        Xs = sp.csr_matrix(X)
        g = gradient_cls()
        w = RNG.normal(size=20)
        np.testing.assert_allclose(
            g.gradient(w, Xs, y), g.gradient(w, X, y), atol=1e-12
        )
        assert g.loss(w, Xs, y) == pytest.approx(g.loss(w, X, y))
        np.testing.assert_allclose(g.predict(w, Xs), g.predict(w, X))


class TestFactories:
    def test_task_gradient_aliases(self):
        assert task_gradient("classification").task == "logreg"
        assert task_gradient("regression").task == "linreg"
        assert task_gradient("svm").task == "svm"

    def test_task_gradient_with_l2(self):
        g = task_gradient("logreg", l2=0.1)
        assert isinstance(g, L2Regularized)

    def test_unknown_task(self):
        with pytest.raises(PlanError):
            task_gradient("clustering")

    def test_named_gradient(self):
        assert isinstance(named_gradient("hinge"), HingeGradient)
        assert isinstance(named_gradient("logistic"), LogisticGradient)
        with pytest.raises(PlanError):
            named_gradient("huber")


class TestGradientLinearity:
    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_linreg_gradient_batch_mean_property(self, scale):
        """Mean gradient over a batch equals mean of per-point gradients."""
        X, y = _data(n=16, d=4, seed=9, labels="real")
        X = X * scale
        g = LinearRegressionGradient()
        w = np.linspace(-1, 1, 4)
        per_point = np.mean(
            [g.gradient(w, X[i:i + 1], y[i:i + 1]) for i in range(16)],
            axis=0,
        )
        np.testing.assert_allclose(g.gradient(w, X, y), per_point, atol=1e-9)
