"""CalibrationStore: learning, persistence, and the optimizer loop."""

import dataclasses

import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.runtime import (
    AdaptiveTrainer,
    CalibrationStore,
    Correction,
    PerturbedCostModel,
    PlanSegment,
    cluster_signature,
)
from repro.runtime.calibration import MAX_FACTOR

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=400, d=10, task="logreg", spec=spec, seed=3)


def segment(algorithm="bgd", predicted_per_iter=1.0, observed_per_iter=2.0,
            iterations=20, predicted_iterations=20, converged=True):
    return PlanSegment(
        plan=algorithm.upper(),
        algorithm=algorithm,
        predicted_iterations=predicted_iterations,
        predicted_per_iteration_s=predicted_per_iter,
        predicted_total_s=predicted_per_iter * predicted_iterations,
        iterations=iterations,
        sim_seconds=observed_per_iter * iterations,
        converged=converged,
    )


class TestStore:
    def test_identity_until_observed(self, spec):
        store = CalibrationStore()
        correction = store.correction("bgd", spec)
        assert correction.is_identity
        assert correction.cost_factor == 1.0
        assert correction.iterations_factor == 1.0
        assert store.version == 0

    def test_first_observation_replaces_the_prior(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=4.0)
        assert store.correction("bgd", spec).cost_factor == pytest.approx(4.0)

    def test_later_observations_are_smoothed(self, spec):
        store = CalibrationStore(alpha=0.5)
        store.observe("bgd", spec, cost_ratio=4.0)
        store.observe("bgd", spec, cost_ratio=2.0)
        assert store.correction("bgd", spec).cost_factor == pytest.approx(3.0)

    def test_ratios_are_clamped(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=1e9)
        assert store.correction("bgd", spec).cost_factor == MAX_FACTOR

    def test_fields_observed_independently(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.0)
        c = store.correction("bgd", spec)
        assert c.cost_observations == 1
        assert c.iterations_observations == 0
        assert c.iterations_factor == 1.0
        store.observe("bgd", spec, iterations_ratio=3.0)
        c = store.correction("bgd", spec)
        assert c.iterations_factor == pytest.approx(3.0)
        assert c.cost_factor == pytest.approx(2.0)

    def test_version_increments_per_update(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.0)
        store.observe("mgd", spec, cost_ratio=2.0)
        assert store.version == 2
        # A no-information observation does not bump the version.
        store.observe("sgd", spec)
        assert store.version == 2

    def test_keys_are_per_cluster(self, spec):
        store = CalibrationStore()
        other = spec.with_overrides(n_nodes=8)
        assert cluster_signature(spec) != cluster_signature(other)
        store.observe("bgd", spec, cost_ratio=2.0)
        assert store.correction("bgd", other).is_identity
        assert set(store.corrections_for(spec)) == {"bgd"}
        assert store.corrections_for(other) == {}


class TestTwoLevelKeys:
    """Workload-specific corrections with algorithm-level fallback."""

    def workloads(self, spec):
        from repro.cluster.storage import DatasetStats
        from repro.runtime import workload_signature

        a = DatasetStats(name="a", task="logreg", n=1000, d=10)
        b = DatasetStats(name="b", task="logreg", n=5000, d=40)
        assert workload_signature(a) != workload_signature(b)
        return workload_signature(a), workload_signature(b)

    def test_falls_back_to_algorithm_aggregate(self, spec):
        store = CalibrationStore(min_workload_observations=3)
        wa, wb = self.workloads(spec)
        store.observe("bgd", spec, cost_ratio=4.0, workload=wa)
        # One workload observation is below the threshold, but the
        # aggregate learned from it: both workloads see the aggregate.
        assert store.correction("bgd", spec, workload=wa).cost_factor == \
            pytest.approx(4.0)
        assert store.correction("bgd", spec, workload=wb).cost_factor == \
            pytest.approx(4.0)

    def test_workload_key_takes_over_with_enough_traces(self, spec):
        store = CalibrationStore(alpha=1.0, min_workload_observations=3)
        wa, wb = self.workloads(spec)
        # Workload a is consistently 4x; workload b is consistently 1.5x.
        for _ in range(3):
            store.observe("bgd", spec, cost_ratio=4.0, workload=wa)
        for _ in range(3):
            store.observe("bgd", spec, cost_ratio=1.5, workload=wb)
        assert store.correction("bgd", spec, workload=wa).cost_factor == \
            pytest.approx(4.0)
        assert store.correction("bgd", spec, workload=wb).cost_factor == \
            pytest.approx(1.5)
        # The anonymous lookup still sees the cross-workload aggregate
        # (alpha=1.0 makes it exactly the latest observation).
        aggregate = store.correction("bgd", spec).cost_factor
        assert 1.5 <= aggregate <= 4.0

    def test_anonymous_observation_feeds_aggregate_only(self, spec):
        store = CalibrationStore(min_workload_observations=1)
        wa, _ = self.workloads(spec)
        store.observe("bgd", spec, cost_ratio=2.0)
        assert store.correction("bgd", spec, workload=wa).cost_factor == \
            pytest.approx(2.0)  # fallback, no workload key exists

    def test_workload_keys_round_trip_through_json(self, spec):
        store = CalibrationStore(min_workload_observations=1)
        wa, _ = self.workloads(spec)
        store.observe("bgd", spec, cost_ratio=3.0, workload=wa)
        clone = CalibrationStore.from_dict(
            store.to_dict(), min_workload_observations=1
        )
        assert clone.correction("bgd", spec, workload=wa).cost_factor == \
            pytest.approx(3.0)

    def test_corrections_for_excludes_workload_keys(self, spec):
        store = CalibrationStore()
        wa, _ = self.workloads(spec)
        store.observe("bgd", spec, cost_ratio=2.0, workload=wa)
        assert set(store.corrections_for(spec)) == {"bgd"}

    def test_state_digest_tracks_content_and_threshold(self, spec):
        wa, _ = self.workloads(spec)
        a = CalibrationStore()
        b = CalibrationStore()
        assert a.state_digest() == b.state_digest()  # both pristine
        a.observe("bgd", spec, cost_ratio=2.0, workload=wa)
        assert a.state_digest() != b.state_digest()
        b.observe("bgd", spec, cost_ratio=2.0, workload=wa)
        assert a.state_digest() == b.state_digest()  # same content again
        # The workload threshold changes which factors a lookup serves,
        # so it is part of the digest even with identical corrections.
        c = CalibrationStore.from_dict(a.to_dict(),
                                       min_workload_observations=1)
        assert c.state_digest() != a.state_digest()


class TestClusterLRUBound:
    def specs(self, spec, count):
        return [spec.with_overrides(n_nodes=2 + i) for i in range(count)]

    def test_unbounded_by_default(self, spec):
        store = CalibrationStore()
        for s in self.specs(spec, 10):
            store.observe("bgd", s, cost_ratio=2.0)
        assert all(
            not store.correction("bgd", s).is_identity
            for s in self.specs(spec, 10)
        )

    def test_lru_cluster_evicted_over_bound(self, spec):
        store = CalibrationStore(max_clusters=2)
        a, b, c = self.specs(spec, 3)
        store.observe("bgd", a, cost_ratio=2.0)
        store.observe("bgd", b, cost_ratio=3.0)
        store.observe("mgd", a, cost_ratio=4.0)  # refresh a; b is LRU
        store.observe("bgd", c, cost_ratio=5.0)  # evicts b wholesale
        assert store.correction("bgd", b).is_identity
        assert store.correction("bgd", a).cost_factor == pytest.approx(2.0)
        assert store.correction("mgd", a).cost_factor == pytest.approx(4.0)
        assert store.correction("bgd", c).cost_factor == pytest.approx(5.0)

    def test_lookup_refreshes_recency(self, spec):
        store = CalibrationStore(max_clusters=2)
        a, b, c = self.specs(spec, 3)
        store.observe("bgd", a, cost_ratio=2.0)
        store.observe("bgd", b, cost_ratio=3.0)
        store.correction("bgd", a)               # a is now most recent
        store.observe("bgd", c, cost_ratio=5.0)  # evicts b, not a
        assert store.correction("bgd", a).cost_factor == pytest.approx(2.0)
        assert store.correction("bgd", b).is_identity

    def test_eviction_bumps_version(self, spec):
        store = CalibrationStore(max_clusters=1)
        a, b = self.specs(spec, 2)
        store.observe("bgd", a, cost_ratio=2.0)
        before = store.version
        store.observe("bgd", b, cost_ratio=3.0)  # evicts a's cluster
        assert store.version > before + 1  # observe +1, eviction +1

    def test_lookup_of_unknown_cluster_does_not_pollute_lru(self, spec):
        store = CalibrationStore(max_clusters=2)
        a, b, c = self.specs(spec, 3)
        store.observe("bgd", a, cost_ratio=2.0)
        store.correction("bgd", b)  # never observed: must not be tracked
        store.correction("bgd", c)
        store.observe("bgd", b, cost_ratio=3.0)
        # a survives: the unknown-cluster lookups did not push it out.
        assert store.correction("bgd", a).cost_factor == pytest.approx(2.0)

    def test_validates_bound(self):
        with pytest.raises(ValueError):
            CalibrationStore(max_clusters=0)


class TestRecordSegment:
    def test_cost_and_iterations_from_converged_segment(self, spec):
        store = CalibrationStore()
        assert store.record_segment(
            segment(observed_per_iter=3.0, iterations=40,
                    predicted_iterations=20), spec
        )
        c = store.correction("bgd", spec)
        assert c.cost_factor == pytest.approx(3.0)
        assert c.iterations_factor == pytest.approx(2.0)

    def test_unconverged_segment_teaches_cost_only(self, spec):
        store = CalibrationStore()
        store.record_segment(segment(converged=False), spec)
        c = store.correction("bgd", spec)
        assert c.cost_observations == 1
        assert c.iterations_observations == 0

    def test_trivial_segment_is_ignored(self, spec):
        store = CalibrationStore()
        assert not store.record_segment(segment(iterations=1), spec)
        assert store.version == 0


class TestPersistence:
    def test_round_trip(self, spec, tmp_path):
        path = tmp_path / "calibration.json"
        store = CalibrationStore(path=str(path))
        store.observe("bgd", spec, cost_ratio=4.0, iterations_ratio=1.5)
        store.save()

        restored = CalibrationStore.open(str(path))
        c = restored.correction("bgd", spec)
        assert c.cost_factor == pytest.approx(4.0)
        assert c.iterations_factor == pytest.approx(1.5)
        assert restored.version == store.version

    def test_open_missing_path_is_fresh(self, tmp_path):
        store = CalibrationStore.open(str(tmp_path / "nope.json"))
        assert store.observations == 0

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            CalibrationStore().save()


class TestCalibrationRoundTrip:
    """predict -> trace -> corrected predict is closer to observed."""

    def test_corrected_estimate_closer_to_observed_cost(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-3,
                                max_iter=60, seed=0)
        store = CalibrationStore()
        # The cost model believes BGD is 4x cheaper than it is.
        model = PerturbedCostModel(spec, {"bgd": 0.25})

        def bgd_estimate():
            optimizer = GDOptimizer(
                SimulatedCluster(spec, seed=0),
                algorithms=("bgd",),
                cost_model=model,
                calibration=store,
            )
            return optimizer.optimize(
                dataset, training, fixed_iterations=60
            ).chosen

        before = bgd_estimate()
        trainer = AdaptiveTrainer(
            GDOptimizer(
                SimulatedCluster(spec, seed=0), algorithms=("bgd",),
                cost_model=model, calibration=store,
            ),
            calibration=store,
        )
        outcome = trainer.train(dataset, training, fixed_iterations=60)
        observed = outcome.trace.segments[0].observed_per_iteration_s
        after = bgd_estimate()

        err_before = abs(before.per_iteration_s - observed)
        err_after = abs(after.per_iteration_s - observed)
        assert err_after < err_before
        assert after.per_iteration_s == pytest.approx(observed, rel=0.35)
        assert "calibration:cost_factor" in after.breakdown

    def test_factors_stable_under_repeated_calibrated_runs(
        self, spec, dataset
    ):
        """Once learned, a correct factor must not decay: later runs
        observe ratio ~1 against *calibrated* predictions, and the
        composed absolute ratio keeps the store at the true factor
        (not its square root)."""
        training = TrainingSpec(task="logreg", tolerance=1e-3,
                                max_iter=60, seed=0)
        store = CalibrationStore()
        model = PerturbedCostModel(spec, {"bgd": 0.25})
        factors = []
        for _ in range(3):
            trainer = AdaptiveTrainer(
                GDOptimizer(
                    SimulatedCluster(spec, seed=0), algorithms=("bgd",),
                    cost_model=model, calibration=store,
                ),
                calibration=store,
            )
            trainer.train(dataset, training, fixed_iterations=60)
            factors.append(store.correction("bgd", spec).cost_factor)
        assert factors[0] == pytest.approx(4.0, rel=0.05)
        assert factors[-1] == pytest.approx(factors[0], rel=0.05)

    def test_segments_record_applied_factors(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-3,
                                max_iter=60, seed=0)
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=4.0)
        trainer = AdaptiveTrainer(
            GDOptimizer(
                SimulatedCluster(spec, seed=0), algorithms=("bgd",),
                calibration=store,
            ),
            calibration=store,
        )
        outcome = trainer.train(dataset, training, fixed_iterations=60)
        segment = outcome.trace.segments[0]
        assert segment.applied_cost_factor == pytest.approx(4.0)

    def test_identity_store_changes_nothing(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-3,
                                max_iter=60, seed=0)

        def report_with(calibration):
            return GDOptimizer(
                SimulatedCluster(spec, seed=0),
                calibration=calibration,
            ).optimize(dataset, training, fixed_iterations=60)

        plain = report_with(None)
        empty = report_with(CalibrationStore())
        assert [c.total_s for c in plain.candidates] == \
            [c.total_s for c in empty.candidates]
        assert plain.chosen_plan == empty.chosen_plan
        assert not empty.calibrated

    def test_report_flags_applied_corrections(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-3,
                                max_iter=60, seed=0)
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.5)
        report = GDOptimizer(
            SimulatedCluster(spec, seed=0), calibration=store
        ).optimize(dataset, training, fixed_iterations=60)
        assert report.calibrated
        assert report.corrections["bgd"].cost_factor == pytest.approx(2.5)


class TestSerialization:
    def test_corrections_survive_dict_round_trip(self, spec):
        store = CalibrationStore()
        store.observe("mgd", spec, cost_ratio=2.0, iterations_ratio=0.5)
        clone = CalibrationStore.from_dict(store.to_dict())
        a = store.correction("mgd", spec)
        b = clone.correction("mgd", spec)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_summary_renders(self, spec):
        store = CalibrationStore()
        assert "empty" in store.summary()
        store.observe("sgd", spec, cost_ratio=3.0)
        assert "sgd@" in store.summary()


class TestNoOpObserveChurn:
    """Regression: a no-op observation must not churn stamped caches."""

    def test_nonpositive_ratios_leave_digest_and_version_alone(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.0)
        version = store.version
        digest = store.state_digest()
        store.observe("bgd", spec, cost_ratio=0.0)
        store.observe("bgd", spec, cost_ratio=-3.0, iterations_ratio=0.0)
        store.observe("bgd", spec, cost_ratio=None, iterations_ratio=-1.0)
        assert store.version == version
        assert store.state_digest() == digest

    def test_noop_observe_does_not_materialize_keys(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=0.0, workload="w1")
        assert store.state_digest() == CalibrationStore().state_digest()
        assert store.observations == 0

    def test_noop_observe_does_not_touch_cluster_lru(self, spec):
        other = dataclasses.replace(spec, n_nodes=spec.n_nodes + 1)
        store = CalibrationStore(max_clusters=1)
        store.observe("bgd", spec, cost_ratio=2.0)
        # A junk observation on another cluster must not evict the
        # real correction.
        store.observe("bgd", other, cost_ratio=0.0)
        assert store.correction("bgd", spec).cost_factor == \
            pytest.approx(2.0)

    def test_valid_observe_still_bumps(self, spec):
        store = CalibrationStore()
        digest = store.state_digest()
        store.observe("bgd", spec, cost_ratio=2.0)
        assert store.version == 1
        assert store.state_digest() != digest


class TestDigestServedStateProperty:
    """state_digest() changes iff the served corrections change."""

    def test_scripted_op_sequence(self, spec):
        from repro.cluster.storage import DatasetStats
        from repro.runtime import workload_signature

        wl = workload_signature(DatasetStats(
            name="w", task="classification", n=1000, d=5
        ))
        store = CalibrationStore(min_workload_observations=2)
        seen = [store.state_digest()]

        def step(changed_expected, **kwargs):
            store.observe("bgd", spec, **kwargs)
            digest = store.state_digest()
            if changed_expected:
                assert digest not in seen
            else:
                assert digest == seen[-1]
            seen.append(digest)

        step(False, cost_ratio=0.0)                   # no-op
        step(True, cost_ratio=2.0)                    # first real factor
        step(True, cost_ratio=2.0)                    # count moved (2)
        step(False, cost_ratio=None)                  # no-op again
        step(True, cost_ratio=3.0, workload=wl)       # wl key appears
        step(True, cost_ratio=3.0, workload=wl)       # wl crosses threshold

    def test_threshold_crossing_changes_served_correction(self, spec):
        from repro.cluster.storage import DatasetStats
        from repro.runtime import workload_signature

        wl = workload_signature(DatasetStats(
            name="w", task="classification", n=1000, d=5
        ))
        store = CalibrationStore(min_workload_observations=2)
        store.observe("bgd", spec, cost_ratio=2.0)
        store.observe("bgd", spec, cost_ratio=8.0, workload=wl)
        # One workload observation: the aggregate is still served.
        below = store.correction("bgd", spec, workload=wl)
        store.observe("bgd", spec, cost_ratio=8.0, workload=wl)
        above = store.correction("bgd", spec, workload=wl)
        assert above.cost_factor != below.cost_factor

    def test_eviction_changes_digest(self, spec):
        other = dataclasses.replace(spec, n_nodes=spec.n_nodes + 1)
        store = CalibrationStore(max_clusters=1)
        store.observe("bgd", spec, cost_ratio=2.0)
        before = store.state_digest()
        store.observe("bgd", other, cost_ratio=2.0)  # evicts spec's keys
        assert store.state_digest() != before

    def test_same_served_state_same_digest_across_instances(self, spec):
        a = CalibrationStore()
        b = CalibrationStore()
        for store in (a, b):
            store.observe("bgd", spec, cost_ratio=2.0)
            store.observe("sgd", spec, iterations_ratio=0.5)
        assert a.state_digest() == b.state_digest()
        # The workload threshold changes which factors lookups serve,
        # so it is part of the digest.
        c = CalibrationStore(min_workload_observations=7)
        assert c.state_digest() != CalibrationStore().state_digest()


def _storm_saver(path, seed, rounds):
    """Cross-process save-storm worker (module level: picklable)."""
    spec = ClusterSpec(jitter_sigma=0.0)
    for i in range(rounds):
        store = CalibrationStore(path=path)
        for alg in ("bgd", "mgd", "sgd"):
            store.observe(alg, spec, cost_ratio=float(seed + i + 1),
                          iterations_ratio=0.5)
        store.save()


class TestSaveStorm:
    """Regression: concurrent savers must never publish a torn file."""

    def test_cross_process_save_storm_keeps_the_file_parseable(
            self, tmp_path):
        import json
        import multiprocessing

        path = str(tmp_path / "calibration.json")
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_storm_saver, args=(path, seed, 20))
            for seed in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        with open(path) as handle:
            payload = json.load(handle)  # never torn
        restored = CalibrationStore.from_dict(payload, path=path)
        assert restored.observations > 0

    def test_unique_temp_names_per_writer(self, tmp_path, monkeypatch):
        import os as os_module

        path = str(tmp_path / "calibration.json")
        spec = ClusterSpec(jitter_sigma=0.0)
        store = CalibrationStore(path=path)
        store.observe("bgd", spec, cost_ratio=2.0)
        seen = []
        real_replace = os_module.replace

        def spy(src, dst):
            seen.append(src)
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.runtime.calibration.os.replace", spy
        )
        store.save()
        store.save()
        assert len(seen) == 2
        # The temp name embeds the writer's identity, not a fixed
        # "{target}.tmp" two sibling processes would race on.
        assert all(s != f"{path}.tmp" for s in seen)
        assert all(str(os_module.getpid()) in s for s in seen)


class TestCorrectionForwardCompat:
    """Regression: additive fields must not brick older readers."""

    def test_from_dict_tolerates_unknown_keys(self):
        payload = {"cost_factor": 2.0, "cost_observations": 3,
                   "learned_residual_stats": {"rmse": 0.1}}
        correction = Correction.from_dict(payload)
        assert correction.cost_factor == 2.0
        assert correction.cost_observations == 3

    def test_store_round_trip_with_future_fields(self, spec):
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.0)
        payload = store.to_dict()
        for value in payload["corrections"].values():
            value["from_the_future"] = True
        restored = CalibrationStore.from_dict(payload)
        assert restored.correction("bgd", spec).cost_factor == \
            pytest.approx(2.0)

    def test_plan_entry_corrections_tolerate_future_fields(
            self, spec, dataset):
        from repro.service.serialize import entry_from_dict, entry_to_dict

        training = TrainingSpec(task="logreg", tolerance=1e-3, seed=0)
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=2.0)
        report = GDOptimizer(
            SimulatedCluster(spec, seed=0), calibration=store
        ).optimize(dataset, training, fixed_iterations=30)
        payload = entry_to_dict(report, store.version, store.state_digest())
        for value in payload["report"]["corrections"].values():
            value["from_the_future"] = True
        restored, _, _, _ = entry_from_dict(payload)
        assert restored.corrections["bgd"].cost_factor == pytest.approx(2.0)
