"""End-to-end integration tests crossing every layer of the system.

Each test exercises language -> optimizer -> executor -> simulated
cluster with real convergence checks, plus the cross-cutting invariants
(engine accounting vs result accounting, baseline-vs-ml4all consistency
of the learned models).
"""

import numpy as np
import pytest

from repro.api import ML4all
from repro.baselines import MLlibBaseline
from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core import (
    GDPlan,
    SpeculationSettings,
    SpeculativeEstimator,
    TrainingSpec,
    execute_plan,
)
from repro.core.optimizer import GDOptimizer
from repro.data import load

SPEC = ClusterSpec(jitter_sigma=0.0)
FAST = SpeculationSettings(sample_size=300, time_budget_s=0.4,
                           max_speculation_iters=400)


class TestFullPipeline:
    def test_declarative_to_converged_model(self):
        system = ML4all(cluster_spec=SPEC, seed=11, speculation=FAST)
        session = system.query(
            "M = run regression on yearpred having epsilon 0.01, "
            "max iter 500;"
        )
        model = session.results["M"]
        assert model.result.converged
        ds = system.load_dataset("yearpred")
        # The learned regressor genuinely fits the data (clearly better
        # than the zero predictor, whose MSE equals var(y)).
        assert model.mse(ds.X, ds.y) < np.var(ds.y) / 2

    def test_constraint_violation_propagates_to_query(self):
        from repro.errors import ConstraintError

        system = ML4all(cluster_spec=SPEC, seed=11, speculation=FAST)
        with pytest.raises(ConstraintError):
            # One simulated microsecond is never enough.
            system.train("svm1", epsilon=1e-3, time_budget=1e-6)

    def test_identical_math_across_systems(self):
        """ML4all's BGD and MLlib's BGD learn the same weights (the paper
        configures identical parameters everywhere; only execution
        strategies differ)."""
        ds = load("adult", SPEC, seed=3)
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                max_iter=100, seed=5)
        ml4all = execute_plan(SimulatedCluster(SPEC, seed=1), ds,
                              GDPlan("bgd"), training)
        mllib = MLlibBaseline().train(SimulatedCluster(SPEC, seed=1), ds,
                                      training, "bgd")
        assert mllib.iterations == ml4all.iterations
        np.testing.assert_allclose(mllib.weights, ml4all.weights,
                                   rtol=1e-10)

    def test_result_accounting_matches_engine(self):
        ds = load("covtype", SPEC, seed=3)
        engine = SimulatedCluster(SPEC, seed=1)
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                max_iter=200, seed=5)
        result = execute_plan(engine, ds, GDPlan("mgd", "eager", "shuffle"),
                              training)
        assert sum(result.phase_seconds.values()) == \
            pytest.approx(result.sim_seconds, rel=1e-6)
        assert result.sim_seconds == pytest.approx(engine.clock)

    def test_optimizer_report_consistent_with_execution(self):
        ds = load("adult", SPEC, seed=3)
        engine = SimulatedCluster(SPEC, seed=1)
        optimizer = GDOptimizer(
            engine, estimator=SpeculativeEstimator(FAST, seed=2)
        )
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                max_iter=1000, seed=5)
        report, result = optimizer.train(ds, training)
        # The executed plan is the report's chosen plan and its realised
        # per-iteration cost is near the model's estimate.
        assert result.plan == report.chosen_plan
        est_per_iter = report.chosen.per_iteration_s
        real_per_iter = result.sim_seconds / max(result.iterations, 1)
        assert real_per_iter == pytest.approx(est_per_iter, rel=0.6)

    def test_two_tasks_on_same_engine_accumulate_clock(self):
        system = ML4all(cluster_spec=SPEC, seed=11, speculation=FAST)
        m1 = system.train("adult", algorithm="sgd", sampler="shuffle",
                          transform="lazy", epsilon=0.05, max_iter=100)
        t_after_first = system.engine.clock
        m2 = system.train("adult", algorithm="sgd", sampler="shuffle",
                          transform="lazy", epsilon=0.05, max_iter=100)
        assert system.engine.clock > t_after_first
        assert m1.result.sim_seconds > 0
        assert m2.result.sim_seconds > 0

    def test_cache_warm_across_runs(self):
        """A second eager run on the same engine reads from cache."""
        ds = load("covtype", SPEC, seed=3)
        engine = SimulatedCluster(SPEC, seed=1)
        training = TrainingSpec(task="logreg", tolerance=1e-12, max_iter=5,
                                seed=5)
        first = execute_plan(engine, ds, GDPlan("bgd"), training)
        second = execute_plan(engine, ds, GDPlan("bgd"), training)
        assert second.sim_seconds < first.sim_seconds

    def test_svm3_partial_cache_behaviour(self):
        """svm3's text form exceeds the cluster cache; its binary form
        fits -- eager BGD becomes memory-resident after transform."""
        ds = load("svm3", SPEC, seed=3)
        assert ds.total_bytes > SPEC.cache_bytes
        assert ds.as_binary().total_bytes < SPEC.cache_bytes
        engine = SimulatedCluster(SPEC, seed=1)
        training = TrainingSpec(task="svm", tolerance=1e-12, max_iter=3,
                                seed=5)
        result = execute_plan(engine, ds, GDPlan("bgd"), training)
        assert result.iterations == 3
        assert engine.cache.cached_fraction(ds.as_binary()) > 0.99
