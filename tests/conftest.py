"""Shared fixtures for the test suite.

``make_dataset`` lives in ``support.py`` (not here) so test modules can
import it without racing ``benchmarks/conftest.py`` for the top-level
``conftest`` module name when pytest runs from the repo root.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SimulatedCluster

from support import make_dataset


@pytest.fixture
def spec():
    """Default cluster spec without jitter, for deterministic assertions."""
    return ClusterSpec(jitter_sigma=0.0)


@pytest.fixture
def engine(spec):
    return SimulatedCluster(spec, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_dataset(spec):
    return make_dataset(spec=spec)
