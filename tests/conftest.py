"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, PartitionedDataset, SimulatedCluster
from repro.cluster.storage import DatasetStats
from repro.data import make_classification, make_regression


@pytest.fixture
def spec():
    """Default cluster spec without jitter, for deterministic assertions."""
    return ClusterSpec(jitter_sigma=0.0)


@pytest.fixture
def engine(spec):
    return SimulatedCluster(spec, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_dataset(
    n_phys=200,
    d=10,
    sim_n=None,
    spec=None,
    task="logreg",
    representation="text",
    seed=0,
    sparse=False,
    block_bytes=None,
    **gen_kwargs,
):
    """Build a small PartitionedDataset for tests.

    ``sim_n`` (default: n_phys) sets the simulated row count;
    ``block_bytes`` optionally overrides the HDFS block size so tests can
    force a specific partition count.
    """
    spec = spec or ClusterSpec(jitter_sigma=0.0)
    if block_bytes is not None:
        spec = spec.with_overrides(hdfs_block_bytes=block_bytes)
    rng = np.random.default_rng(seed)
    if task == "linreg":
        X, y, _ = make_regression(n_phys, d, sparse=sparse, rng=rng, **gen_kwargs)
    else:
        X, y, _ = make_classification(
            n_phys, d, sparse=sparse, rng=rng, **gen_kwargs
        )
    stats = DatasetStats(
        name="test",
        task=task,
        n=sim_n or n_phys,
        d=d,
        density=gen_kwargs.get("density", 1.0),
        is_sparse=sparse,
    )
    return PartitionedDataset(X, y, stats, spec, representation=representation)


@pytest.fixture
def small_dataset(spec):
    return make_dataset(spec=spec)
