"""Unit tests for the Table 2 dataset registry."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.cluster import ClusterSpec
from repro.data.datasets import (
    PAPER_ORDER,
    REGISTRY,
    generate,
    load,
    names,
    svm_a_spec,
    svm_b_spec,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(PAPER_ORDER) == set(REGISTRY)
        assert names() == list(PAPER_ORDER)

    def test_table2_shapes(self):
        """The registry reproduces Table 2's columns exactly."""
        expected = {
            "adult": ("logreg", 100_827, 123, 0.11),
            "covtype": ("logreg", 581_012, 54, 0.22),
            "yearpred": ("linreg", 463_715, 90, 1.0),
            "rcv1": ("logreg", 677_399, 47_236, 1.5e-3),
            "higgs": ("svm", 11_000_000, 28, 0.92),
            "svm1": ("svm", 5_516_800, 100, 1.0),
            "svm2": ("svm", 44_134_400, 100, 1.0),
            "svm3": ("svm", 88_268_800, 100, 1.0),
        }
        for name, (task, n, d, density) in expected.items():
            spec = REGISTRY[name]
            assert spec.task == task
            assert spec.paper_n == n
            assert spec.d == d
            assert spec.density == density

    def test_table2_sizes_via_row_text_bytes(self):
        # Table 2: svm3 is 160 GB; the byte model must reproduce it.
        stats = REGISTRY["svm3"].stats()
        assert stats.text_bytes == pytest.approx(160 * 1024 ** 3, rel=0.01)
        stats = REGISTRY["adult"].stats()
        assert stats.text_bytes == pytest.approx(7 * 1024 ** 2, rel=0.01)

    def test_physical_rows_scaled_down(self):
        for name in PAPER_ORDER:
            spec = REGISTRY[name]
            assert spec.phys_n < spec.paper_n
            assert spec.phys_n >= 32

    def test_generate_physical_data(self):
        spec = REGISTRY["adult"]
        X, y = generate(spec, seed=0)
        assert X.shape == (spec.phys_n, spec.d)
        assert sp.issparse(X)

    def test_generate_respects_phys_n_override(self):
        X, y = generate(REGISTRY["adult"], seed=0, phys_n=123)
        assert X.shape[0] == 123

    def test_load_partitioned(self):
        cluster = ClusterSpec()
        ds = load("adult", cluster, seed=0)
        assert ds.stats.n == 100_827
        assert ds.representation == "text"
        assert ds.n_partitions == 1  # 7 MB < one HDFS block

    def test_rcv1_partition_count_matches_paper_layout(self):
        # 1.2 GB / 128 MB blocks ~ 10 partitions.
        ds = load("rcv1", ClusterSpec(), seed=0)
        assert 9 <= ds.n_partitions <= 11

    def test_svm3_exceeds_default_cache_as_text(self):
        cluster = ClusterSpec()
        ds = load("svm3", cluster, seed=0)
        assert ds.total_bytes > cluster.cache_bytes

    def test_rcv1_sorted_rows(self):
        ds = load("rcv1", ClusterSpec(), seed=0)
        assert np.all(np.diff(ds.y) >= 0)

    def test_deterministic_per_seed(self):
        a = load("adult", ClusterSpec(), seed=5)
        b = load("adult", ClusterSpec(), seed=5)
        np.testing.assert_array_equal(a.y, b.y)


class TestSweepSpecs:
    def test_svm_a_bytes_scale_with_points(self):
        small = svm_a_spec(2_758_400)
        big = svm_a_spec(88_268_800)
        assert big.paper_bytes == pytest.approx(32 * small.paper_bytes,
                                                rel=0.01)
        assert big.paper_bytes == pytest.approx(160 * 1024 ** 3, rel=0.01)

    def test_svm_b_physical_cap(self):
        # Physical matrices stay laptop-sized even at 500K features.
        spec = svm_b_spec(500_000)
        assert spec.phys_n * spec.d <= 30_000_000

    def test_svm_b_small_d(self):
        spec = svm_b_spec(1000)
        X, y = generate(spec, seed=0)
        assert X.shape[1] == 1000

    def test_sweep_specs_loadable(self):
        ds = load(svm_a_spec(2_758_400), ClusterSpec(), seed=0)
        assert ds.stats.n == 2_758_400
