"""The service front-end: wire parsing, dispatch, admission control.

Covers the protocol tier added above the split service: the shared
parse/dispatch path (structured errors instead of dead serve loops),
the concurrent socket server, and its admission policies -- load
shedding, per-tenant quotas, deadlines that preempt (not just reject)
-- plus the import-compatibility guarantees of the split itself.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import ML4all
from repro.errors import ReproError
from repro.service import MetricsRegistry
from repro.service.frontend import (
    Dispatcher,
    SocketFrontend,
    parse_request_line,
    parse_wire_line,
)

FAST_LINE = "adult epsilon=0.05 fixed_iterations=40"


def connect(frontend):
    sock = socket.create_connection(("127.0.0.1", frontend.port), timeout=10)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def ask(handle, line):
    handle.write(line + "\n")
    handle.flush()
    return json.loads(handle.readline())


# ---------------------------------------------------------------------------
# import compatibility of the split
# ---------------------------------------------------------------------------

class TestImportCompat:
    def test_pre_split_service_module_paths_resolve(self):
        from repro.service.service import (  # noqa: F401
            JobProgress,
            OptimizerService,
            ServiceRequest,
            ServiceResult,
            TrainServiceResult,
            _CachedPlan,
        )
        from repro.service import core, jobs

        assert OptimizerService is core.OptimizerService
        assert issubclass(OptimizerService, jobs.TrainingJobs)

    def test_store_tools_still_import_from_backends(self):
        from repro.service import storetools
        from repro.service.backends import compact_store, inspect_store

        assert inspect_store is storetools.inspect_store
        assert compact_store is storetools.compact_store
        with pytest.raises(AttributeError):
            from repro.service import backends

            backends.no_such_attribute

    def test_request_line_parsing_still_importable_from_cli(self):
        from repro.__main__ import iter_request_lines  # noqa: F401
        from repro.__main__ import parse_request_line as from_cli

        assert from_cli is parse_request_line

    def test_legacy_counters_are_metrics_views(self):
        from repro.service import OptimizerService

        service = OptimizerService()
        assert service.computed == 0
        service.metrics.inc("service.computed")
        assert service.computed == 1


# ---------------------------------------------------------------------------
# wire parsing
# ---------------------------------------------------------------------------

class TestParseWireLine:
    def test_text_line_with_wire_keys(self):
        wire = parse_wire_line(
            "adult epsilon=0.01 deadline_s=2.5 tenant=t1 verb=train id=42"
        )
        assert wire.request == {"dataset": "adult", "epsilon": 0.01}
        assert wire.verb == "train"
        assert wire.tenant == "t1"
        assert wire.deadline_s == 2.5
        assert wire.id == "42"

    def test_json_line(self):
        wire = parse_wire_line(
            '{"dataset": "adult", "max_iter": 100, "tenant": "t2"}'
        )
        assert wire.request == {"dataset": "adult", "max_iter": 100}
        assert wire.verb is None
        assert wire.tenant == "t2"

    def test_bare_metrics_verb(self):
        for line in ("metrics", '{"verb": "metrics"}'):
            wire = parse_wire_line(line)
            assert wire.verb == "metrics"
            assert wire.request is None

    @pytest.mark.parametrize("line", [
        "{not json",
        '["a", "list"]',
        '{"dataset": "adult", "verb": "frobnicate"}',
        '{"dataset": "adult", "deadline_s": -1}',
        '{"dataset": "adult", "bogus_key": 1}',
        '{"epsilon": 0.01}',  # no dataset
        "epsilon=0.01",       # no dataset, text form
        "adult max_iter=notanint",
    ])
    def test_malformed_lines_raise_repro_error(self, line):
        with pytest.raises(ReproError):
            parse_wire_line(line)

    def test_wire_keys_never_reach_the_request(self):
        wire = parse_wire_line('{"dataset": "adult", "verb": "optimize"}')
        for key in ("verb", "tenant", "deadline_s", "id"):
            assert key not in wire.request


# ---------------------------------------------------------------------------
# dispatcher (protocol-independent half)
# ---------------------------------------------------------------------------

class TestDispatcher:
    @pytest.fixture(scope="class")
    def dispatcher(self):
        return Dispatcher(ML4all(seed=7))

    def test_optimize_response_shape(self, dispatcher):
        response = dispatcher.handle_line(FAST_LINE)
        assert response["ok"] is True
        assert response["verb"] == "optimize"
        assert response["dataset"] == "adult"
        assert response["lines"][0].startswith("adult: ")
        assert "plan" in response

    def test_bad_line_is_a_structured_error_not_an_exception(
        self, dispatcher
    ):
        before = dispatcher.metrics.value("frontend.bad_requests")
        response = dispatcher.handle_line("= broken =")
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "detail" in response
        assert dispatcher.metrics.value("frontend.bad_requests") == before + 1
        # and the dispatcher still serves afterwards
        assert dispatcher.handle_line(FAST_LINE)["ok"] is True

    def test_unknown_dataset_is_request_failed(self, dispatcher):
        response = dispatcher.handle_line("no_such_dataset epsilon=0.01")
        assert response["ok"] is False
        assert response["error"] == "request_failed"

    def test_metrics_verb_reports_all_layers(self, dispatcher):
        dispatcher.handle_line(FAST_LINE)
        response = dispatcher.handle_line("metrics")
        assert response["ok"] is True
        counters = response["metrics"]["counters"]
        assert counters["service.requests"] >= 1
        assert counters["frontend.served"] >= 1
        assert any(line.startswith("service.requests ")
                   for line in response["lines"])

    def test_verb_train_forces_training(self, dispatcher):
        response = dispatcher.handle_line(FAST_LINE + " verb=train")
        assert response["ok"] is True
        assert response["verb"] == "train"
        assert response["iterations"] > 0
        assert response["preempted"] is False

    def test_deadline_preempts_plain_train(self, dispatcher):
        response = dispatcher.handle_line(
            "adult epsilon=0.000001 max_iter=5000 verb=train deadline_s=0.05"
        )
        assert response["ok"] is True
        assert response["preempted"] is True
        assert response["iterations"] < 5000


# ---------------------------------------------------------------------------
# socket front-end against the real optimizer
# ---------------------------------------------------------------------------

class TestSocketFrontend:
    def test_sixteen_thread_hammer_zero_dropped(self):
        system = ML4all(seed=7)
        dispatcher = Dispatcher(system)
        threads, per_thread = 16, 3
        with SocketFrontend(dispatcher, port=0, max_workers=8,
                            shed_after=threads * per_thread + 8) as frontend:
            results, errors = [], []

            def client(worker):
                try:
                    sock, handle = connect(frontend)
                    try:
                        for i in range(per_thread):
                            response = ask(
                                handle, f"{FAST_LINE} id={worker}-{i}"
                            )
                            results.append(response)
                    finally:
                        sock.close()
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)

            workers = [
                threading.Thread(target=client, args=(n,))
                for n in range(threads)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=60)
            assert errors == []
            # zero dropped responses, all successful
            assert len(results) == threads * per_thread
            assert all(r["ok"] for r in results)
            # correlation ids survived the concurrency
            assert len({r["id"] for r in results}) == threads * per_thread
            assert (dispatcher.metrics.value("frontend.served")
                    == threads * per_thread)
            assert dispatcher.metrics.value("frontend.shed") == 0
            # one cold compute, everyone else warm/coalesced
            snapshot = dispatcher.metrics.snapshot()["counters"]
            assert snapshot["service.requests"] == threads * per_thread
            assert snapshot["service.computed"] == 1

    def test_deadline_bounded_train_preempts_with_resumable_checkpoint(
        self, tmp_path
    ):
        store = str(tmp_path / "jobs.json")
        system = ML4all(seed=7, checkpoint_path=store)
        dispatcher = Dispatcher(system)
        job = ('{"dataset": "adult", "epsilon": 1e-6, "max_iter": 2000, '
               '"job_id": "deadline-job", "checkpoint_every": 25')
        with SocketFrontend(dispatcher, port=0, max_workers=2) as frontend:
            sock, handle = connect(frontend)
            try:
                first = ask(handle, job + ', "deadline_s": 0.3}')
                assert first["ok"] is True
                assert first["preempted"] is True
                assert first["job"]["status"] == "preempted"
                banked = first["job"]["done_iterations"]
                assert 0 < banked < 2000

                # The checkpoint on disk is resumable right now.
                checkpoint = system.service().checkpoints.load(
                    "deadline-job"
                )
                assert checkpoint is not None
                assert checkpoint.status == "preempted"
                assert checkpoint.resumable
                assert checkpoint.done_iterations == banked

                # Same request without the deadline: resumes and finishes.
                second = ask(handle, job + "}")
                assert second["ok"] is True
                assert second["preempted"] is False
                assert second["job"]["status"] == "done"
                assert second["job"]["resumed"] is True
                assert second["job"]["done_iterations"] > banked
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# admission control (deterministic, via a blocking stub dispatcher)
# ---------------------------------------------------------------------------

class _BlockingDispatcher:
    """Duck-typed dispatcher whose requests block until released --
    makes queue-occupancy tests deterministic instead of racing real
    optimizer work."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.release = threading.Event()
        self.started = threading.Semaphore(0)

    def handle(self, wire, remaining_s=None, queue_wait_s=None):
        if wire.verb == "metrics":
            return {"ok": True, "verb": "metrics",
                    "metrics": self.metrics.snapshot()}
        self.started.release()
        if not self.release.wait(timeout=30):
            return {"ok": False, "error": "internal", "detail": "stuck"}
        response = {"ok": True, "verb": "optimize"}
        if wire.id is not None:
            response["id"] = wire.id
        if remaining_s is not None:
            response["remaining_s"] = remaining_s
        return response


class TestAdmissionControl:
    def test_shed_when_over_capacity(self):
        stub = _BlockingDispatcher()
        with SocketFrontend(stub, port=0, max_workers=4,
                            shed_after=2) as frontend:
            sock, handle = connect(frontend)
            try:
                for i in range(2):
                    handle.write(f"adult id=a{i}\n")
                handle.flush()
                # both admitted requests are running before we overflow
                for _ in range(2):
                    assert stub.started.acquire(timeout=10)
                shed = ask(handle, "adult id=extra")
                assert shed["ok"] is False
                assert shed["error"] == "overloaded"
                assert shed["id"] == "extra"
                assert stub.metrics.value("frontend.shed") == 1

                stub.release.set()
                replies = [json.loads(handle.readline()) for _ in range(2)]
                assert all(r["ok"] for r in replies)
                assert {r["id"] for r in replies} == {"a0", "a1"}
            finally:
                sock.close()

    def test_per_tenant_quota_rejection(self):
        stub = _BlockingDispatcher()
        with SocketFrontend(stub, port=0, max_workers=8, shed_after=32,
                            max_inflight=2) as frontend:
            sock, handle = connect(frontend)
            try:
                for i in range(2):
                    handle.write(f"adult tenant=alice id=al{i}\n")
                handle.flush()
                for _ in range(2):
                    assert stub.started.acquire(timeout=10)
                # alice is at her quota; bob is not
                rejected = ask(handle, "adult tenant=alice id=al2")
                assert rejected["ok"] is False
                assert rejected["error"] == "quota_exceeded"
                assert "alice" in rejected["detail"]
                handle.write("adult tenant=bob id=bob0\n")
                handle.flush()
                assert stub.started.acquire(timeout=10)
                assert stub.metrics.value("frontend.quota_rejected") == 1

                stub.release.set()
                replies = [json.loads(handle.readline()) for _ in range(3)]
                assert {r["id"] for r in replies} == {"al0", "al1", "bob0"}
            finally:
                sock.close()

    def test_deadline_expires_while_queued(self):
        stub = _BlockingDispatcher()
        with SocketFrontend(stub, port=0, max_workers=1,
                            shed_after=8) as frontend:
            sock, handle = connect(frontend)
            try:
                handle.write("adult id=holder\n")
                handle.flush()
                assert stub.started.acquire(timeout=10)
                # this one waits behind the holder past its deadline
                handle.write("adult id=late deadline_s=0.05\n")
                handle.flush()
                time.sleep(0.3)
                stub.release.set()
                replies = [json.loads(handle.readline()) for _ in range(2)]
                by_id = {r["id"]: r for r in replies}
                assert by_id["holder"]["ok"] is True
                assert by_id["late"]["ok"] is False
                assert by_id["late"]["error"] == "deadline_exceeded"
                assert stub.metrics.value(
                    "frontend.deadline_rejected"
                ) == 1
            finally:
                sock.close()

    def test_queued_deadline_shrinks_execution_budget(self):
        stub = _BlockingDispatcher()
        stub.release.set()  # no blocking: measure pass-through remaining
        with SocketFrontend(stub, port=0, max_workers=2) as frontend:
            sock, handle = connect(frontend)
            try:
                response = ask(handle, "adult id=d deadline_s=5")
                assert response["ok"] is True
                assert 0 < response["remaining_s"] <= 5
            finally:
                sock.close()

    def test_metrics_bypasses_admission(self):
        stub = _BlockingDispatcher()
        with SocketFrontend(stub, port=0, max_workers=2,
                            shed_after=1) as frontend:
            sock, handle = connect(frontend)
            try:
                handle.write("adult id=holder\n")
                handle.flush()
                assert stub.started.acquire(timeout=10)
                # saturated: a request sheds, but metrics still answers
                shed = ask(handle, "adult id=nope")
                assert shed["error"] == "overloaded"
                metrics = ask(handle, "metrics")
                assert metrics["ok"] is True
                assert metrics["metrics"]["counters"]["frontend.shed"] == 1
                stub.release.set()
                assert json.loads(handle.readline())["id"] == "holder"
            finally:
                sock.close()

    def test_malformed_line_gets_structured_error_and_connection_lives(
        self,
    ):
        stub = _BlockingDispatcher()
        stub.release.set()
        with SocketFrontend(stub, port=0, max_workers=2) as frontend:
            sock, handle = connect(frontend)
            try:
                bad = ask(handle, "{broken json")
                assert bad["ok"] is False
                assert bad["error"] == "bad_request"
                good = ask(handle, "adult id=after")
                assert good["ok"] is True
            finally:
                sock.close()
