"""The fleet's network boundary: ``repro store`` wire protocol and the
remote ``CacheBackend``.

Covers the URL scheme and fingerprint-range shard map, the full
CacheBackend contract spoken over TCP (including namespace isolation and
server-restart persistence), the protocol's failure frames (malformed
input, oversized frames, CAS conflicts, idempotent txn replay,
mid-stream disconnects), client retry over a flaky server backend
(FaultyBackend underneath the live server), a 16-client concurrent CAS
storm with a monotone-version audit, and a genuinely separate
``python -m repro store`` process.
"""

import json
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import (
    CheckpointStore,
    JsonFileBackend,
    MemoryBackend,
    RemoteBackend,
    RemoteStoreError,
    ShardedBackend,
    StoreServer,
    open_backend,
    open_remote_backend,
    parse_store_url,
    shard_index,
)
from repro.service.remote import WIRE_FORMAT, shard_point

from support import FaultyBackend

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def server():
    with StoreServer(backend=MemoryBackend()) as live:
        yield live


@pytest.fixture
def backend(server):
    remote = RemoteBackend("127.0.0.1", server.port, namespace="t",
                           backoff_s=0.001)
    yield remote
    remote.close()


class RawClient:
    """A bare protocol speaker: one socket, JSON lines by hand.

    Tests use it where the shape of the *frames* is the subject --
    RemoteBackend would paper over exactly the malformations and replays
    under test.
    """

    def __init__(self, port, host="127.0.0.1"):
        self.sock = socket.create_connection((host, port), timeout=10)
        self.reader = self.sock.makefile("rb")
        self.writer = self.sock.makefile("wb")

    def send_raw(self, data):
        self.writer.write(data)
        self.writer.flush()

    def recv(self):
        raw = self.reader.readline()
        if not raw:
            return None  # server closed the connection
        return json.loads(raw.decode("utf-8"))

    def call(self, **frame):
        self.send_raw(json.dumps(frame).encode("utf-8") + b"\n")
        return self.recv()

    def close(self):
        for handle in (self.reader, self.writer, self.sock):
            try:
                handle.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# URL scheme and shard map
# ---------------------------------------------------------------------------
class TestStoreUrls:
    def test_single_endpoint_with_namespace(self):
        assert parse_store_url("tcp://db.example:7500/plans") == \
            ([("db.example", 7500)], "plans")

    def test_namespace_defaults(self):
        assert parse_store_url("tcp://h:1")[1] == "default"
        assert parse_store_url("tcp://h:1/")[1] == "default"

    def test_multi_endpoint_shard_set(self):
        endpoints, namespace = parse_store_url(
            "tcp://a:1,b:2 , c:3/jobs"
        )
        assert endpoints == [("a", 1), ("b", 2), ("c", 3)]
        assert namespace == "jobs"

    @pytest.mark.parametrize("url", [
        "file:///x", "tcp://", "tcp:///ns", "tcp://hostonly/ns",
        "tcp://h:notaport/ns", "tcp://h:1/bad:ns", "tcp://h:1/-leading",
        "tcp://h:1/" + "n" * 65,
    ])
    def test_malformed_urls_are_rejected(self, url):
        with pytest.raises(ValueError):
            parse_store_url(url)

    def test_open_remote_backend_picks_client_shape(self):
        single = open_remote_backend("tcp://127.0.0.1:9/ns")
        assert isinstance(single, RemoteBackend)
        assert single.namespace == "ns"
        fleet = open_remote_backend("tcp://127.0.0.1:9,127.0.0.1:10/ns")
        assert isinstance(fleet, ShardedBackend)
        assert len(fleet.shards) == 2

    def test_open_backend_dispatches_tcp_urls(self):
        assert isinstance(
            open_backend("tcp://127.0.0.1:9/ns"), RemoteBackend
        )

    def test_shard_map_covers_the_range(self):
        # Hex fingerprints partition by leading 32 bits...
        assert shard_point("00000000abc") == 0
        assert shard_point("ffffffff123") == 0xFFFFFFFF
        assert shard_index("00000000abc", 4) == 0
        assert shard_index("ffffffff123", 4) == 3
        # ...non-hex keys (job ids) still land on exactly one shard.
        for key in ("job-7", "worker!w-a", "anything"):
            owners = {shard_index(key, 4) for _ in range(3)}
            assert len(owners) == 1
            assert 0 <= owners.pop() < 4

    def test_shard_map_spreads_fingerprints(self):
        import hashlib

        keys = [hashlib.sha256(str(n).encode()).hexdigest()
                for n in range(200)]
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[shard_index(key, 4)] += 1
        assert all(count > 20 for count in counts)  # no starved shard


# ---------------------------------------------------------------------------
# the CacheBackend contract over TCP
# ---------------------------------------------------------------------------
class TestRemoteBackendContract:
    def test_store_load_delete_clear(self, backend):
        assert backend.load() == {}
        backend.store("k1", {"a": 1})
        backend.store("k2", {"b": [1, 2]})
        backend.store("k1", {"a": 2})
        assert backend.load() == {"k1": {"a": 2}, "k2": {"b": [1, 2]}}
        assert len(backend) == 2
        assert backend.get("k1") == {"a": 2}
        assert backend.get("missing") is None
        backend.delete("k1")
        backend.delete("missing")  # no-op
        assert backend.load() == {"k2": {"b": [1, 2]}}
        backend.clear()
        assert backend.load() == {}

    def test_update_is_the_cas_primitive(self, backend):
        backend.store("k", {"n": 1})
        assert backend.update("k", lambda cur: {"n": cur["n"] + 1}) == \
            {"n": 2}
        assert backend.update("new", lambda cur: {"was": cur}) == \
            {"was": None}
        backend.update("k", lambda cur: None)  # None deletes
        assert backend.get("k") is None

    def test_update_raising_fn_aborts_the_mutation(self, backend):
        backend.store("k", {"n": 1})

        def boom(cur):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            backend.update("k", boom)
        assert backend.get("k") == {"n": 1}

    def test_replace_and_mutate_all(self, backend):
        backend.store("keep", {"n": 1})
        backend.store("drop", {"n": 2})
        out = backend.mutate_all(
            lambda entries: {"keep": entries["keep"], "new": {"n": 3}}
        )
        assert out == {"keep": {"n": 1}, "new": {"n": 3}}
        assert backend.load() == {"keep": {"n": 1}, "new": {"n": 3}}
        backend.replace({"only": {"n": 4}})
        assert backend.load() == {"only": {"n": 4}}

    def test_namespaces_do_not_leak(self, server):
        plans = RemoteBackend("127.0.0.1", server.port, namespace="plans")
        jobs = RemoteBackend("127.0.0.1", server.port, namespace="jobs")
        plans.store("k", {"tier": "plan"})
        jobs.store("k", {"tier": "job"})
        assert plans.load() == {"k": {"tier": "plan"}}
        assert jobs.load() == {"k": {"tier": "job"}}
        jobs.clear()
        assert plans.get("k") == {"tier": "plan"}  # clear() is ns-scoped
        plans.close()
        jobs.close()

    def test_ping_reports_the_protocol(self, backend):
        pong = backend.ping()
        assert pong["wire_format"] == WIRE_FORMAT
        assert pong["server"] == "repro-store"

    def test_data_survives_a_server_restart(self, tmp_path):
        path = str(tmp_path / "store.json")
        with StoreServer(path=path) as first:
            client = RemoteBackend("127.0.0.1", first.port, namespace="ns")
            client.store("k", {"v": 1})
            client.close()
        with StoreServer(path=path) as second:
            client = RemoteBackend("127.0.0.1", second.port, namespace="ns")
            try:
                assert client.get("k") == {"v": 1}
                # Inherited entries re-enter version history at 1: a CAS
                # cycle read-modify-writes them like any other entry.
                assert client.update("k", lambda cur: {"v": cur["v"] + 1}) \
                    == {"v": 2}
            finally:
                client.close()

    def test_unreachable_store_degrades_load_but_fails_update(self):
        # Grab a port nothing listens on.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        dead = RemoteBackend("127.0.0.1", port, retries=1,
                             backoff_s=0.001, timeout_s=0.5)
        with pytest.warns(UserWarning, match="starting cold"):
            assert dead.load() == {}
        assert dead.get("k") is None
        with pytest.raises(RemoteStoreError, match="unreachable"):
            dead.store("k", {"v": 1})
        with pytest.raises(RemoteStoreError):
            dead.update("k", lambda cur: {"v": 1})
        dead.close()

    def test_client_reconnects_after_the_server_drops_it(
        self, server, backend
    ):
        backend.store("k", {"v": 1})
        # The server tears down every live connection (deploy restart,
        # idle reaper): the pooled client socket is now dead...
        with server._clients_lock:
            casualties = list(server._clients)
        for casualty in casualties:
            casualty.shutdown(socket.SHUT_RDWR)
        # ...and the next call must retry on a fresh connection.
        assert backend.get("k") == {"v": 1}


# ---------------------------------------------------------------------------
# failure frames, straight protocol
# ---------------------------------------------------------------------------
class TestWireProtocol:
    def test_malformed_frames_get_structured_errors(self, server):
        client = RawClient(server.port)
        try:
            client.send_raw(b"this is not json\n")
            assert client.recv()["error"] == "bad_frame"
            client.send_raw(b"[1, 2, 3]\n")
            assert client.recv()["error"] == "bad_frame"
            assert client.call(op="explode")["error"] == "bad_request"
            assert client.call(op=7)["error"] == "bad_request"
            assert client.call(op="get")["error"] == "bad_request"  # no key
            assert client.call(op="get", key="")["error"] == "bad_request"
            assert client.call(op="get", key="k", ns="bad:ns")["error"] \
                == "bad_request"
            assert client.call(
                op="replace", entries=[1, 2]
            )["error"] == "bad_request"
            # The connection survived every malformed frame.
            assert client.call(op="ping")["ok"]
        finally:
            client.close()

    def test_oversized_frame_closes_the_connection(self, tmp_path):
        with StoreServer(backend=MemoryBackend(),
                         max_frame_bytes=2048) as small:
            client = RawClient(small.port)
            try:
                response = client.call(
                    op="put", key="big", ns="t", value="x" * 4096
                )
                assert response["error"] == "frame_too_large"
                assert client.recv() is None  # server hung up
            finally:
                client.close()
            # A well-behaved client on the same server is unaffected,
            # and the oversized put never landed.
            survivor = RemoteBackend("127.0.0.1", small.port, namespace="t",
                                     retries=0)
            try:
                assert survivor.load() == {}
            finally:
                survivor.close()

    def test_oversized_value_surfaces_as_a_store_error(self):
        with StoreServer(backend=MemoryBackend(),
                         max_frame_bytes=2048) as small:
            fat = RemoteBackend("127.0.0.1", small.port, retries=1,
                                backoff_s=0.001,
                                max_frame_bytes=small.max_frame_bytes)
            try:
                with pytest.raises(RemoteStoreError):
                    fat.store("big", {"blob": "x" * 4096})
            finally:
                fat.close()

    def test_mid_stream_disconnect_leaves_the_server_serving(self, server):
        rude = RawClient(server.port)
        rude.send_raw(b'{"op": "put", "key": "half')  # no newline, ever
        rude.close()
        polite = RawClient(server.port)
        try:
            assert polite.call(op="ping")["ok"]
            assert server.frames_served >= 1
        finally:
            polite.close()

    def test_cas_conflict_and_txn_replay(self, server):
        client = RawClient(server.port)
        try:
            put = client.call(op="put", key="k", ns="t", value={"n": 1})
            assert put["ok"] and put["version"] == 1
            # Wrong expectation: structured conflict, current version.
            stale = client.call(op="cas", key="k", ns="t",
                                value={"n": 9}, expect=0)
            assert stale == {"ok": False, "error": "cas_conflict",
                             "version": 1, "expect": 0}
            # Right expectation applies...
            win = client.call(op="cas", key="k", ns="t",
                              value={"n": 2}, expect=1, txn="t-1")
            assert win["ok"] and win["version"] == 2
            # ...and the *same* transaction retried (the client never saw
            # the ack) replays as applied instead of double-applying.
            replay = client.call(op="cas", key="k", ns="t",
                                 value={"n": 2}, expect=1, txn="t-1")
            assert replay["ok"] and replay.get("replayed")
            assert replay["version"] == 2
            assert client.call(op="get", key="k", ns="t")["value"] == {"n": 2}
        finally:
            client.close()

    def test_version_history_survives_deletion(self, server):
        client = RawClient(server.port)
        try:
            assert client.call(op="put", key="k", ns="t",
                               value=1)["version"] == 1
            assert client.call(op="delete", key="k", ns="t")["version"] == 2
            assert client.call(op="put", key="k", ns="t",
                               value=2)["version"] == 3
            # A CAS from before the delete still loses: the counter
            # never restarted at 1.
            stale = client.call(op="cas", key="k", ns="t", value=9, expect=1)
            assert stale["error"] == "cas_conflict"
            missing = client.call(op="delete", key="nope", ns="t")
            assert missing["ok"] and not missing["deleted"]
        finally:
            client.close()

    def test_wrong_shard_keys_are_refused_not_stored(self):
        with StoreServer(backend=MemoryBackend(), shard=(0, 2)) as left:
            client = RawClient(left.port)
            try:
                foreign = "ffffffff-key"  # top of the range: shard 1's
                response = client.call(op="put", key=foreign, ns="t",
                                       value=1)
                assert response["error"] == "wrong_shard"
                assert response["shard"] == 1
                local = client.call(op="put", key="00000000-key", ns="t",
                                    value=1)
                assert local["ok"]
            finally:
                client.close()

    def test_shard_bounds_are_validated(self):
        with pytest.raises(ValueError, match="shard index"):
            StoreServer(backend=MemoryBackend(), shard=(2, 2))


# ---------------------------------------------------------------------------
# retry over a genuinely flaky server backend
# ---------------------------------------------------------------------------
class TestClientRetry:
    def test_transient_server_fault_is_retried_to_success(self):
        faulty = FaultyBackend(MemoryBackend(), plan={
            "store": ["timeout", None],
        })
        with StoreServer(backend=faulty) as flaky:
            client = RemoteBackend("127.0.0.1", flaky.port, namespace="t",
                                   backoff_s=0.001)
            try:
                client.store("k", {"v": 1})  # attempt 1 fails server-side
                assert client.get("k") == {"v": 1}
            finally:
                client.close()
        assert ("store", "timeout") in faulty.injected

    def test_ambiguous_server_write_converges_on_retry(self):
        # The server backend applies the write, then "fails": the client
        # sees server_error, retries the same idempotent put, and the
        # store ends correct with no duplicate entry.
        faulty = FaultyBackend(MemoryBackend(), plan={
            "store": ["fail_after_write", None],
        })
        with StoreServer(backend=faulty) as flaky:
            client = RemoteBackend("127.0.0.1", flaky.port, namespace="t",
                                   backoff_s=0.001)
            try:
                client.store("k", {"v": 1})
                assert client.load() == {"k": {"v": 1}}
            finally:
                client.close()

    def test_retry_budget_exhaustion_raises(self):
        faulty = FaultyBackend(MemoryBackend(), plan={
            "store": ["timeout"] * 8,
        })
        with StoreServer(backend=faulty) as flaky:
            client = RemoteBackend("127.0.0.1", flaky.port, namespace="t",
                                   retries=2, backoff_s=0.001)
            try:
                with pytest.raises(RemoteStoreError, match="unreachable"):
                    client.store("k", {"v": 1})
            finally:
                client.close()


# ---------------------------------------------------------------------------
# the 16-client CAS storm
# ---------------------------------------------------------------------------
class TestConcurrentStorm:
    def test_sixteen_clients_contending_on_one_key(self, server):
        """16 raw-protocol clients CAS-increment one counter.  Every
        increment must land exactly once, and the applied versions --
        collected across all clients -- must form one strictly monotone,
        gapless sequence: the audit that proves the version counter is
        an honest serialization order."""
        clients, increments = 16, 8
        applied = [[] for _ in range(clients)]
        barrier = threading.Barrier(clients)

        def storm(slot):
            client = RawClient(server.port)
            try:
                barrier.wait()
                done = 0
                while done < increments:
                    seen = client.call(op="get", key="counter", ns="t")
                    value = seen["value"] or 0
                    outcome = client.call(
                        op="cas", key="counter", ns="t", value=value + 1,
                        expect=seen["version"],
                        txn=f"storm-{slot}-{done}",
                    )
                    if outcome.get("ok"):
                        applied[slot].append(outcome["version"])
                        done += 1
                    else:
                        assert outcome["error"] == "cas_conflict"
            finally:
                client.close()

        threads = [threading.Thread(target=storm, args=(slot,))
                   for slot in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = clients * increments
        final = RawClient(server.port)
        try:
            assert final.call(op="get", key="counter",
                              ns="t")["value"] == total
        finally:
            final.close()
        # Per client the versions are strictly increasing...
        for versions in applied:
            assert versions == sorted(versions)
            assert len(set(versions)) == len(versions)
        # ...and globally they are one gapless serialization order.
        merged = sorted(v for versions in applied for v in versions)
        assert merged == list(range(1, total + 1))

    def test_remote_backend_update_storm_loses_no_increment(self, server):
        def bump():
            client = RemoteBackend("127.0.0.1", server.port, namespace="t",
                                   backoff_s=0.001)
            try:
                for _ in range(10):
                    client.update(
                        "counter",
                        lambda cur: {"n": (cur or {"n": 0})["n"] + 1},
                    )
            finally:
                client.close()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        audit = RemoteBackend("127.0.0.1", server.port, namespace="t")
        try:
            assert audit.get("counter") == {"n": 80}
        finally:
            audit.close()


# ---------------------------------------------------------------------------
# sharded namespaces end to end
# ---------------------------------------------------------------------------
class TestShardedBackend:
    def test_keys_land_on_their_owning_shard_only(self):
        with StoreServer(backend=MemoryBackend(), shard=(0, 2)) as left, \
                StoreServer(backend=MemoryBackend(), shard=(1, 2)) as right:
            fleet = open_remote_backend(
                f"tcp://127.0.0.1:{left.port},127.0.0.1:{right.port}/ns"
            )
            try:
                keys = [f"job-{n}" for n in range(24)]
                for key in keys:
                    fleet.store(key, {"key": key})
                assert set(fleet.load()) == set(keys)
                assert len(fleet) == 24
                # Each store holds exactly its own range, nothing else.
                held = [
                    {ikey.split("::", 1)[1]
                     for ikey in shard.backend.load()}
                    for shard in (left, right)
                ]
                for index, own in enumerate(held):
                    assert own == {key for key in keys
                                   if shard_index(key, 2) == index}
                    assert own  # the split actually used both shards
                # Point ops route; CAS stays single-shard-atomic.
                fleet.update("job-0", lambda cur: {**cur, "touched": True})
                assert fleet.get("job-0")["touched"]
                fleet.delete("job-1")
                assert fleet.get("job-1") is None
                fleet.replace({"job-2": {"kept": True}})
                assert fleet.load() == {"job-2": {"kept": True}}
            finally:
                fleet.close()


# ---------------------------------------------------------------------------
# a genuinely separate store process
# ---------------------------------------------------------------------------
class TestStoreProcess:
    def test_live_repro_store_process(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        env = {
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        }
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "store", "--path", path,
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on 127.0.0.1:"), banner
            port = int(banner.rsplit(":", 1)[1])

            client = RemoteBackend("127.0.0.1", port, namespace="jobs")
            try:
                assert client.ping()["wire_format"] == WIRE_FORMAT
                client.store("k", {"v": 1})
                assert client.update("k", lambda cur: {"v": cur["v"] + 1}) \
                    == {"v": 2}
                # The checkpoint layer speaks through the same URL with
                # zero call-site changes.
                store = CheckpointStore(
                    path=f"tcp://127.0.0.1:{port}/checkpoints"
                )
                store.submit("j1", {"dataset": "whatever"})
                assert "j1" in store.pending()
            finally:
                client.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        # The store process persisted everything to its backing file,
        # namespaced so the tiers cannot collide.
        persisted = JsonFileBackend(path).load()
        assert persisted["jobs::k"] == {"v": 2}
        assert persisted["checkpoints::j1"]["status"] == "queued"
