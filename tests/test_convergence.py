"""Unit tests for convergence criteria (the Converge operator maths)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import PlanError
from repro.gd.convergence import (
    L1WeightDelta,
    L2WeightDelta,
    make_convergence,
)


class TestCriteria:
    def test_l1_matches_listing5(self):
        # Listing 5: delta += |w_j - w'_j| over all j.
        old = np.array([1.0, -2.0, 3.0])
        new = np.array([0.5, -1.0, 3.0])
        assert L1WeightDelta().delta(old, new) == pytest.approx(1.5)

    def test_l2(self):
        old = np.zeros(2)
        new = np.array([3.0, 4.0])
        assert L2WeightDelta().delta(old, new) == pytest.approx(5.0)

    def test_identical_weights_zero_delta(self):
        w = np.array([1.0, 2.0])
        assert L1WeightDelta().delta(w, w) == 0.0
        assert L2WeightDelta().delta(w, w) == 0.0

    @given(
        w=hnp.arrays(np.float64, 8,
                     elements=st.floats(-1e6, 1e6)),
        v=hnp.arrays(np.float64, 8,
                     elements=st.floats(-1e6, 1e6)),
    )
    @settings(max_examples=100, deadline=None)
    def test_norm_inequality(self, w, v):
        """L2 <= L1 <= sqrt(d) * L2 for any weight pair."""
        l1 = L1WeightDelta().delta(w, v)
        l2 = L2WeightDelta().delta(w, v)
        assert l2 <= l1 + 1e-9
        assert l1 <= np.sqrt(8) * l2 + 1e-9

    @given(
        w=hnp.arrays(np.float64, 5, elements=st.floats(-100, 100)),
        v=hnp.arrays(np.float64, 5, elements=st.floats(-100, 100)),
    )
    @settings(max_examples=100, deadline=None)
    def test_symmetry_and_nonnegativity(self, w, v):
        for criterion in (L1WeightDelta(), L2WeightDelta()):
            assert criterion.delta(w, v) >= 0
            assert criterion.delta(w, v) == pytest.approx(
                criterion.delta(v, w)
            )


class TestFactory:
    def test_names(self):
        assert isinstance(make_convergence("l1"), L1WeightDelta)
        assert isinstance(make_convergence("L2"), L2WeightDelta)

    def test_passthrough(self):
        criterion = L1WeightDelta()
        assert make_convergence(criterion) is criterion

    def test_unknown(self):
        with pytest.raises(PlanError):
            make_convergence("linf")
