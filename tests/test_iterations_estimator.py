"""Unit tests for the speculation-based iterations estimator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.iterations import (
    SpeculationSettings,
    SpeculativeEstimator,
)
from repro.errors import EstimationError
from repro.gd.gradients import task_gradient

from support import make_dataset


@pytest.fixture
def dataset():
    return make_dataset(
        n_phys=2000, d=20, task="logreg",
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02, seed=3,
    )


@pytest.fixture
def estimator():
    return SpeculativeEstimator(
        SpeculationSettings(sample_size=500, time_budget_s=1.0,
                            max_speculation_iters=1500),
        seed=11,
    )


class TestSample:
    def test_take_sample_size(self, estimator, dataset):
        Xs, ys = estimator.take_sample(dataset.X, dataset.y)
        assert Xs.shape[0] == 500
        assert ys.shape[0] == 500

    def test_sample_capped_by_n(self, estimator):
        small = make_dataset(n_phys=100, d=5)
        Xs, ys = estimator.take_sample(small.X, small.y)
        assert Xs.shape[0] == 100

    def test_sample_without_replacement(self, estimator, dataset):
        rng = np.random.default_rng(0)
        Xs, _ = estimator.take_sample(dataset.X, dataset.y, rng)
        # All rows distinct (dense rows as tuples).
        rows = {tuple(row) for row in np.asarray(Xs)}
        assert len(rows) == Xs.shape[0]


class TestParallelSpeculation:
    def test_thread_pool_matches_sequential(self, estimator, dataset):
        """Thread-pool speculation is deterministic under a fixed seed."""
        gradient = task_gradient("logreg")
        sequential = estimator.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3,
            max_workers=1,
        )
        parallel = estimator.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3,
            max_workers=3,
        )
        assert set(sequential) == set(parallel)
        for algorithm, seq_est in sequential.items():
            par_est = parallel[algorithm]
            assert par_est.estimated_iterations == seq_est.estimated_iterations
            assert par_est.observed_directly == seq_est.observed_directly
            np.testing.assert_array_equal(
                par_est.speculation_errors, seq_est.speculation_errors
            )

    def test_auto_workers_repeatable(self, estimator, dataset):
        gradient = task_gradient("logreg")
        first = estimator.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3,
            max_workers="auto",
        )
        second = estimator.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3,
            max_workers="auto",
        )
        for algorithm in first:
            assert (
                first[algorithm].estimated_iterations
                == second[algorithm].estimated_iterations
            )

    def test_default_is_sequential(self, estimator):
        """Plain estimators keep the legacy fully-reproducible path."""
        assert estimator.max_workers == 1

    def test_constructor_worker_override(self, dataset):
        gradient = task_gradient("logreg")
        pinned = SpeculativeEstimator(
            SpeculationSettings(sample_size=500, time_budget_s=1.0,
                                max_speculation_iters=1500),
            seed=11,
            max_workers=2,
        )
        estimates = pinned.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3
        )
        assert set(estimates) == {"bgd", "mgd", "sgd"}


class TestEstimate:
    def test_estimates_for_core_algorithms(self, estimator, dataset):
        gradient = task_gradient("logreg")
        estimates = estimator.estimate_all(
            dataset.X, dataset.y, gradient, target_tolerance=1e-3
        )
        assert set(estimates) == {"bgd", "mgd", "sgd"}
        for est in estimates.values():
            assert est.estimated_iterations >= 1
            assert est.speculation_errors.shape[1] == 2

    def test_estimate_same_order_as_actual(self, estimator, dataset):
        """The paper's key claim: estimates in the right order of magnitude."""
        from repro.gd import bgd

        gradient = task_gradient("logreg")
        est = estimator.estimate(
            dataset.X, dataset.y, gradient, "bgd", target_tolerance=1e-2
        )
        actual = bgd(dataset.X, dataset.y, gradient, tolerance=1e-2,
                     max_iter=20000, rng=np.random.default_rng(0))
        assert actual.converged
        ratio = est.estimated_iterations / actual.iterations
        assert 0.1 <= ratio <= 10, f"ratio {ratio}"

    def test_tighter_tolerance_needs_more_iterations(self, estimator,
                                                     dataset):
        gradient = task_gradient("logreg")
        loose = estimator.estimate(
            dataset.X, dataset.y, gradient, "bgd", target_tolerance=1e-1
        )
        tight = estimator.estimate(
            dataset.X, dataset.y, gradient, "bgd", target_tolerance=1e-3
        )
        assert tight.estimated_iterations >= loose.estimated_iterations

    def test_observed_directly_when_target_reached(self, dataset):
        estimator = SpeculativeEstimator(
            SpeculationSettings(sample_size=500, time_budget_s=2.0,
                                speculation_tolerance=1e-4,
                                max_speculation_iters=3000),
            seed=1,
        )
        gradient = task_gradient("logreg")
        est = estimator.estimate(
            dataset.X, dataset.y, gradient, "sgd", target_tolerance=5e-2
        )
        # SGD reaches 5e-2 within speculation on this dataset.
        assert est.observed_directly
        assert est.estimated_iterations <= est.speculation_iterations + 1

    def test_invalid_tolerance(self, estimator, dataset):
        gradient = task_gradient("logreg")
        with pytest.raises(EstimationError):
            estimator.estimate(dataset.X, dataset.y, gradient, "bgd",
                               target_tolerance=0.0)

    def test_shared_sample_reused(self, estimator, dataset):
        gradient = task_gradient("logreg")
        sample = estimator.take_sample(dataset.X, dataset.y)
        est1 = estimator.estimate(
            dataset.X, dataset.y, gradient, "bgd",
            target_tolerance=1e-2, sample=sample,
        )
        est2 = estimator.estimate(
            dataset.X, dataset.y, gradient, "bgd",
            target_tolerance=1e-2, sample=sample,
        )
        assert est1.estimated_iterations == est2.estimated_iterations

    def test_too_few_observations_raises(self, dataset):
        estimator = SpeculativeEstimator(
            SpeculationSettings(sample_size=100, time_budget_s=1.0,
                                max_speculation_iters=2,
                                min_points_for_fit=5),
            seed=1,
        )
        gradient = task_gradient("logreg")
        with pytest.raises(EstimationError):
            estimator.estimate(dataset.X, dataset.y, gradient, "bgd",
                               target_tolerance=1e-9)

    def test_speculation_wall_time_recorded(self, estimator, dataset):
        gradient = task_gradient("logreg")
        est = estimator.estimate(dataset.X, dataset.y, gradient, "bgd",
                                 target_tolerance=1e-2)
        assert est.speculation_wall_s > 0
