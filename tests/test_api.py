"""Integration tests for the ML4all facade and the language interpreter."""

import numpy as np
import pytest

from repro.api import ML4all, TrainedModel
from repro.cluster import ClusterSpec
from repro.core.iterations import SpeculationSettings
from repro.data import write_libsvm
from repro.errors import DataFormatError, QueryError

FAST_SPECULATION = SpeculationSettings(
    sample_size=300, time_budget_s=0.4, max_speculation_iters=500
)


@pytest.fixture
def system():
    return ML4all(
        cluster_spec=ClusterSpec(jitter_sigma=0.0),
        seed=7,
        speculation=FAST_SPECULATION,
    )


class TestDatasets:
    def test_load_registry_dataset(self, system):
        ds = system.load_dataset("adult")
        assert ds.stats.name == "adult"

    def test_load_xy_pair(self, system):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 4))
        y = np.sign(X @ np.ones(4))
        ds = system.load_dataset((X, y), task="svm")
        assert ds.stats.task == "svm"
        assert ds.n_phys == 50

    def test_load_xy_requires_task(self, system):
        with pytest.raises(DataFormatError):
            system.load_dataset((np.zeros((5, 2)), np.zeros(5)))

    def test_load_libsvm_file(self, system, tmp_path):
        rng = np.random.default_rng(0)
        X = np.abs(rng.normal(size=(30, 5)))
        y = np.where(rng.random(30) < 0.5, 1.0, -1.0)
        path = str(tmp_path / "train.txt")
        write_libsvm(path, X, y)
        ds = system.load_dataset(path, task="logreg")
        assert ds.n_phys == 30

    def test_load_csv_file(self, system, tmp_path):
        data = np.column_stack([np.ones(20), np.arange(40).reshape(20, 2)])
        path = str(tmp_path / "data.csv")
        np.savetxt(path, data, delimiter=",")
        ds = system.load_dataset(path, task="linreg")
        assert ds.n_phys == 20
        assert ds.stats.d == 2

    def test_unknown_source(self, system):
        with pytest.raises(DataFormatError):
            system.load_dataset("no_such_dataset_or_file")


class TestTrain:
    def test_train_with_optimizer(self, system):
        model = system.train("adult", epsilon=0.05, max_iter=500)
        assert model.report is not None
        assert model.result.iterations >= 1
        assert model.weights.shape == (123,)

    def test_train_pinned_plan_skips_optimizer(self, system):
        model = system.train("adult", algorithm="sgd", sampler="shuffle",
                             transform="lazy", epsilon=0.05, max_iter=200)
        assert model.report is None
        assert str(model.result.plan) == "SGD-lazy-shuffle"

    def test_train_algorithm_restricted(self, system):
        model = system.train("adult", algorithm="bgd", epsilon=0.05,
                             max_iter=300)
        assert str(model.result.plan) == "BGD"

    def test_fixed_iterations(self, system):
        model = system.train("adult", fixed_iterations=50, max_iter=50,
                             epsilon=1e-12)
        assert model.result.iterations == 50

    def test_predict_and_error(self, system):
        ds = system.load_dataset("adult")
        model = system.train(ds, epsilon=0.05, max_iter=500)
        pred = model.predict(ds.X)
        assert pred.shape == ds.y.shape
        assert model.error_rate(ds.X, ds.y) < 0.5
        assert model.mse(ds.X, ds.y) >= 0

    def test_model_save_load_roundtrip(self, system, tmp_path):
        ds = system.load_dataset("adult")
        model = system.train(ds, epsilon=0.05, max_iter=300)
        path = str(tmp_path / "model.txt")
        model.save(path)
        loaded = TrainedModel.load(path)
        np.testing.assert_allclose(loaded.weights, model.weights)
        assert loaded.task == model.task
        np.testing.assert_array_equal(loaded.predict(ds.X),
                                      model.predict(ds.X))


class TestQueryInterface:
    def test_q1_style_query(self, system):
        session = system.query(
            "Q1 = run classification on adult having epsilon 0.05, "
            "max iter 300;"
        )
        assert "Q1" in session.results
        model = session.results["Q1"]
        assert model.result.iterations >= 1

    def test_using_clause_pins_algorithm(self, system):
        session = system.query(
            "run classification on adult having epsilon 0.05, max iter 200 "
            "using algorithm sgd, sampler shuffle();"
        )
        assert session.last_result.result.plan.algorithm == "sgd"

    def test_persist_and_predict(self, system, tmp_path):
        path = str(tmp_path / "m.txt")
        session = system.query(
            f"Q1 = run classification on adult having epsilon 0.05, "
            f"max iter 200; persist Q1 on {path};"
        )
        out = session.execute(f"r = predict on adult with {path};")
        assert "mse" in out
        assert "r" in session.predictions

    def test_predict_with_named_result(self, system):
        session = system.query(
            "Q2 = run classification on adult having epsilon 0.05, "
            "max iter 200;"
        )
        out = session.execute("predict on adult with Q2;")
        assert out["predictions"].shape[0] == \
            system.load_dataset("adult").n_phys

    def test_persist_unknown_result(self, system):
        with pytest.raises(QueryError):
            system.query("persist QX on /tmp/nope.txt;")

    def test_predict_unknown_model(self, system):
        with pytest.raises(QueryError):
            system.query("predict on adult with ghost_model;")

    def test_two_source_column_query(self, system, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 4))
        y = np.sign(X @ np.ones(4))
        data = np.column_stack([np.zeros(40), y, np.zeros(40), X])
        path = str(tmp_path / "cols.csv")
        np.savetxt(path, data, delimiter=",")
        session = system.query(
            f"run classification on {path}:1, {path}:3-6 "
            f"having epsilon 0.05, max iter 100;"
        )
        assert session.last_result.weights.shape == (4,)

    def test_mismatched_two_source_paths(self, system):
        with pytest.raises(QueryError):
            system.query("run classification on a.csv:1, b.csv:2-3;")
