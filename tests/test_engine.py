"""Unit tests for the simulated cluster engine."""

import pytest

from repro.cluster import ClusterSpec, SimulatedCluster

from support import make_dataset


@pytest.fixture
def ds(spec):
    return make_dataset(n_phys=200, d=10, spec=spec)


class TestClock:
    def test_charge_advances_clock(self, engine):
        engine.charge(1.5, "compute")
        assert engine.clock == pytest.approx(1.5)

    def test_charge_negative_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.charge(-1, "compute")

    def test_charge_records_phase(self, engine):
        engine.charge(0.5, "compute")
        engine.charge(0.25, "sample")
        assert engine.metrics.phase("compute").sim_seconds == pytest.approx(0.5)
        assert engine.metrics.phase("sample").sim_seconds == pytest.approx(0.25)

    def test_reset(self, engine, ds):
        engine.charge(1.0, "compute")
        engine.cache.insert(ds)
        engine.reset()
        assert engine.clock == 0.0
        assert engine.metrics.total_seconds == 0.0
        assert engine.cache.used_bytes == 0

    def test_jitter_disabled_is_deterministic(self, spec):
        a = SimulatedCluster(spec, seed=1)
        b = SimulatedCluster(spec, seed=2)
        a.charge(1.0, "x")
        b.charge(1.0, "x")
        assert a.clock == b.clock == 1.0

    def test_jitter_enabled_perturbs(self):
        spec = ClusterSpec(jitter_sigma=0.2)
        engine = SimulatedCluster(spec, seed=3)
        engine.charge(1.0, "x")
        assert engine.clock != 1.0
        assert 0.3 < engine.clock < 3.0


class TestScan:
    def test_scan_charges_time(self, engine, ds):
        seconds = engine.scan(ds, phase="compute")
        assert seconds > 0
        assert engine.clock == pytest.approx(seconds, rel=0.01)

    def test_scan_cpu_scales_with_rows(self, spec):
        engine = SimulatedCluster(spec, seed=0)
        small = make_dataset(n_phys=100, d=10, spec=spec)
        big = make_dataset(n_phys=100, d=10, sim_n=100_000, spec=spec)
        t_small = engine.scan(small, "compute", cpu_per_row_s=1e-6)
        t_big = engine.scan(big, "compute", cpu_per_row_s=1e-6)
        assert t_big > t_small * 10

    def test_second_scan_cheaper_due_to_cache(self, engine, ds):
        first = engine.scan(ds, phase="compute")
        second = engine.scan(ds, phase="compute")
        assert second < first

    def test_scan_without_cache_stays_on_disk(self, engine, ds):
        engine.scan(ds, phase="compute", cache=False)
        assert engine.cache.cached_fraction(ds) == 0.0

    def test_distributed_scan_launches_job(self, spec):
        engine = SimulatedCluster(spec, seed=0)
        ds = make_dataset(n_phys=500, d=10, sim_n=500_000, spec=spec,
                          block_bytes=64 * 1024)
        assert ds.n_partitions > 1
        engine.scan(ds, phase="compute")
        assert engine.metrics.phase("compute").jobs == 1

    def test_local_scan_no_job(self, engine, ds):
        assert ds.n_partitions == 1
        engine.scan(ds, phase="compute")
        assert engine.metrics.phase("compute").jobs == 0

    def test_wave_parallelism_bounds_time(self, spec):
        # cap partitions in one wave should cost ~one partition's time.
        engine = SimulatedCluster(spec, seed=0)
        ds = make_dataset(n_phys=spec.cap * 8, d=10, sim_n=640_000,
                          spec=spec, block_bytes=32 * 1024)
        p = ds.n_partitions
        t = engine.scan(ds, phase="compute", cache=False)
        per_partition = spec.sequential_read_s(
            ds.partitions[0].sim_bytes, in_memory=False
        )
        waves = -(-p // spec.cap)
        assert t == pytest.approx(waves * per_partition, rel=0.3)

    def test_partition_subset_scan(self, spec):
        engine = SimulatedCluster(spec, seed=0)
        ds = make_dataset(n_phys=500, d=10, sim_n=500_000, spec=spec,
                          block_bytes=64 * 1024)
        t_one = engine.scan(ds, phase="x", partitions=[0], cache=False)
        engine2 = SimulatedCluster(spec, seed=0)
        t_all = engine2.scan(ds, phase="x", cache=False)
        assert t_one < t_all


class TestOtherPrimitives:
    def test_sequential_read_fractional_pages(self, engine, ds):
        t = engine.sequential_read(ds, nbytes=100, phase="sample")
        # far less than a full page's disk read plus seek
        assert t < engine.spec.seek_disk_s + engine.spec.page_io_disk_s

    def test_sequential_read_new_segment_seeks(self, engine, ds):
        t_cont = engine.sequential_read(ds, 1000, "sample")
        t_seek = engine.sequential_read(ds, 1000, "sample", new_segment=True)
        assert t_seek > t_cont

    def test_random_access_costs_per_seek(self, engine, ds):
        t1 = engine.random_access(ds, n_accesses=1, bytes_each=100,
                                  phase="sample")
        t100 = engine.random_access(ds, n_accesses=100, bytes_each=100,
                                    phase="sample")
        assert t100 == pytest.approx(100 * t1, rel=0.05)

    def test_random_access_cheaper_in_memory(self, engine, ds):
        t_disk = engine.random_access(ds, 10, 100, "sample")
        engine.cache.insert(ds)
        t_mem = engine.random_access(ds, 10, 100, "sample")
        assert t_mem < t_disk

    def test_shuffle_partition(self, engine, ds):
        t = engine.shuffle_partition(ds, 0, phase="sample")
        assert t > 0
        assert engine.metrics.phase("sample").rows_processed == \
            ds.partitions[0].sim_rows

    def test_aggregate_records_network(self, engine):
        engine.aggregate(16, 800, phase="update")
        m = engine.metrics.phase("update")
        assert m.network_bytes == 16 * 800
        assert m.packets >= 1

    def test_tree_aggregate_more_expensive_for_many_partials(self, spec):
        a = SimulatedCluster(spec, seed=0)
        b = SimulatedCluster(spec, seed=0)
        t_flat = a.aggregate(64, 8000, phase="update", tree=False)
        t_tree = b.aggregate(64, 8000, phase="update", tree=True)
        # treeAggregate adds per-level barriers (job overheads).
        assert t_tree > t_flat

    def test_collect(self, engine):
        t = engine.collect(1_000_000, "sample")
        assert t > 0
        assert engine.metrics.phase("sample").network_bytes == 1_000_000

    def test_broadcast(self, engine):
        t = engine.broadcast_weights(800, "update")
        assert t > 0

    def test_job_overhead(self, engine, spec):
        engine.job("compute")
        assert engine.clock == pytest.approx(spec.job_overhead_s)
        assert engine.metrics.phase("compute").jobs == 1

    def test_write_dataset(self, engine, ds):
        t = engine.write_dataset(ds, "conversion")
        assert t > 0
        assert engine.metrics.phase("conversion").pages_disk > 0

    def test_metrics_summary_renders(self, engine, ds):
        engine.scan(ds, "compute")
        text = engine.metrics.summary()
        assert "compute" in text
        assert "TOTAL" in text
