"""Unit tests for the cluster hardware spec."""

import math

import pytest

from repro.cluster.hardware import ClusterSpec, laptop_scale_spec


class TestClusterSpec:
    def test_cap_is_nodes_times_slots(self):
        spec = ClusterSpec(n_nodes=4, slots_per_node=4)
        assert spec.cap == 16

    def test_default_matches_paper_testbed(self):
        spec = ClusterSpec()
        # Four nodes, four parallel slots each (Section 8.1).
        assert spec.n_nodes == 4
        assert spec.cap == 16
        assert spec.hdfs_block_bytes == 128 * 1024 * 1024

    def test_pages_in_rounds_up(self):
        spec = ClusterSpec()
        assert spec.pages_in(1) == 1
        assert spec.pages_in(spec.page_bytes) == 1
        assert spec.pages_in(spec.page_bytes + 1) == 2

    def test_packets_in_rounds_up(self):
        spec = ClusterSpec()
        assert spec.packets_in(1) == 1
        assert spec.packets_in(spec.packet_bytes * 3) == 3
        assert spec.packets_in(spec.packet_bytes * 3 + 1) == 4

    def test_sequential_read_memory_cheaper_than_disk(self):
        spec = ClusterSpec()
        nbytes = 10 * spec.page_bytes
        assert spec.sequential_read_s(nbytes, in_memory=True) < \
            spec.sequential_read_s(nbytes, in_memory=False)

    def test_transfer_scales_with_bytes(self):
        spec = ClusterSpec()
        assert spec.transfer_s(spec.packet_bytes * 10) > \
            spec.transfer_s(spec.packet_bytes)

    def test_waves(self):
        spec = ClusterSpec(n_nodes=2, slots_per_node=5)
        assert spec.waves(20) == pytest.approx(2.0)
        assert spec.waves(5) == pytest.approx(0.5)

    def test_with_overrides_returns_new_spec(self):
        spec = ClusterSpec()
        other = spec.with_overrides(cache_bytes=123)
        assert other.cache_bytes == 123
        assert spec.cache_bytes != 123
        assert other.page_bytes == spec.page_bytes

    def test_spec_is_frozen(self):
        spec = ClusterSpec()
        with pytest.raises(Exception):
            spec.cache_bytes = 0

    def test_laptop_scale_spec(self):
        spec = laptop_scale_spec()
        assert spec.cache_bytes < ClusterSpec().cache_bytes
        spec2 = laptop_scale_spec(n_nodes=2)
        assert spec2.n_nodes == 2

    def test_random_read_includes_seek(self):
        spec = ClusterSpec()
        one_page = spec.random_read_s(100, in_memory=False)
        assert one_page >= spec.seek_disk_s


class TestCostHelpers:
    def test_partition_read_waves_match_manual_computation(self):
        spec = ClusterSpec(jitter_sigma=0.0)
        nbytes = 3 * spec.page_bytes
        expected = spec.seek_disk_s + 3 * spec.page_io_disk_s
        assert spec.sequential_read_s(nbytes, in_memory=False) == \
            pytest.approx(expected)

    def test_transfer_counts_packets(self):
        spec = ClusterSpec()
        n_packets = 7
        expected = n_packets * (
            spec.packet_bytes * spec.network_byte_s + spec.packet_latency_s
        )
        assert spec.transfer_s(n_packets * spec.packet_bytes) == \
            pytest.approx(expected)

    def test_zero_byte_transfer_is_one_packet(self):
        spec = ClusterSpec()
        assert spec.packets_in(0) == 1

    def test_waves_fraction_under_capacity(self):
        spec = ClusterSpec()
        assert spec.waves(1) == pytest.approx(1 / spec.cap)
        assert math.isclose(spec.waves(spec.cap), 1.0)
