"""AdaptiveTrainer: mid-flight re-optimization and trace structure."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.curve_fit import FittedCurve
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.runtime import (
    AdaptiveSettings,
    AdaptiveTrainer,
    CalibrationStore,
    ExecutionTrace,
    PerturbedCostModel,
    remaining_iterations,
)

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=2000, d=20, task="logreg", spec=spec, seed=3,
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02,
    )


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-2, seed=1)


def speculation():
    return SpeculationSettings(
        sample_size=400, time_budget_s=0.5, max_speculation_iters=800
    )


def optimizer_for(spec, cost_model=None, calibration=None, seed=0):
    return GDOptimizer(
        SimulatedCluster(spec, seed=seed),
        estimator=SpeculativeEstimator(speculation(), seed=5),
        cost_model=cost_model,
        calibration=calibration,
    )


class TestUnperturbed:
    def test_accurate_run_matches_one_shot_exactly(
        self, spec, dataset, training
    ):
        report, result = optimizer_for(spec).train(dataset, training)
        adaptive = AdaptiveTrainer(optimizer_for(spec)).train(
            dataset, training
        )
        assert not adaptive.switched
        assert len(adaptive.trace.segments) == 1
        assert np.array_equal(result.weights, adaptive.weights)
        assert result.iterations == adaptive.iterations
        assert result.sim_seconds == adaptive.result.sim_seconds
        assert adaptive.report.chosen_plan == report.chosen_plan


class TestPerturbed:
    def test_switches_and_beats_the_one_shot_mispick(
        self, spec, dataset, training
    ):
        # Find the honest choice, then under-estimate a different
        # algorithm 4x so the optimizer mis-picks it.
        honest_report, honest_result = optimizer_for(spec).train(
            dataset, training
        )
        victim = next(
            c.plan.algorithm for c in honest_report.ranking()
            if c.plan.algorithm != honest_report.chosen_plan.algorithm
        )
        model = PerturbedCostModel(spec, {victim: 0.25})

        mispick_report = optimizer_for(spec, cost_model=model).optimize(
            dataset, training
        )
        assert mispick_report.chosen_plan.algorithm == victim

        one_shot_engine = SimulatedCluster(spec, seed=0)
        from repro.core.executor import execute_plan

        one_shot = execute_plan(
            one_shot_engine, dataset, mispick_report.chosen_plan, training
        )

        store = CalibrationStore()
        trainer = AdaptiveTrainer(
            optimizer_for(spec, cost_model=model, calibration=store),
            calibration=store,
        )
        adaptive = trainer.train(dataset, training)

        assert adaptive.switched
        switch = adaptive.trace.switches[0]
        assert switch.from_plan.startswith(victim.upper())
        assert adaptive.converged
        # The switch carried the optimizer state: the post-switch
        # segment resumed the step schedule at the global iteration (no
        # beta/sqrt(1) restart) and the trace records the transfer.
        segments = adaptive.trace.segments
        assert segments[0].state is not None
        assert segments[0].state["iteration_offset"] == \
            segments[0].iterations
        post = segments[1]
        assert any("iteration offset" in note and "carried" in note
                   for note in post.state_transfer)
        assert post.state["iteration_offset"] == \
            segments[0].iterations + post.iterations
        # Execution-only comparison (the adaptive run's sim_seconds also
        # carries speculation; segments alone are the training cost).
        assert adaptive.trace.sim_seconds < one_shot.sim_seconds
        # The trace fed the calibration store: the victim's true cost
        # (~4x the perturbed prediction) was learned.
        correction = store.correction(victim, spec)
        assert correction.cost_factor > 2.0

    def test_no_switch_budget_left_rides_it_out(
        self, spec, dataset, training
    ):
        # max_switches=0 turns the trainer into a telemetry-only runner.
        honest_report, _ = optimizer_for(spec).train(dataset, training)
        victim = next(
            c.plan.algorithm for c in honest_report.ranking()
            if c.plan.algorithm != honest_report.chosen_plan.algorithm
        )
        model = PerturbedCostModel(spec, {victim: 0.25})
        trainer = AdaptiveTrainer(
            optimizer_for(spec, cost_model=model),
            settings=AdaptiveSettings(max_switches=0),
        )
        adaptive = trainer.train(dataset, training)
        assert not adaptive.switched
        assert len(adaptive.trace.segments) == 1


class TestTraceStructure:
    def test_trace_round_trips_through_json(
        self, spec, dataset, training, tmp_path
    ):
        adaptive = AdaptiveTrainer(optimizer_for(spec)).train(
            dataset, training
        )
        path = tmp_path / "trace.json"
        adaptive.trace.save(str(path))
        restored = ExecutionTrace.load(str(path))
        assert restored.workload == adaptive.trace.workload
        assert restored.total_iterations == adaptive.trace.total_iterations
        assert restored.converged == adaptive.trace.converged
        assert len(restored.segments) == len(adaptive.trace.segments)
        seg, orig = restored.segments[0], adaptive.trace.segments[0]
        assert seg.plan == orig.plan
        assert seg.deltas == pytest.approx(orig.deltas)
        assert seg.cost_ratio == pytest.approx(orig.cost_ratio)

    def test_summary_mentions_plans_and_switches(
        self, spec, dataset, training
    ):
        adaptive = AdaptiveTrainer(optimizer_for(spec)).train(
            dataset, training
        )
        text = adaptive.summary()
        assert adaptive.trace.segments[0].plan in text
        assert "switch" in text


class TestFixedIterations:
    def test_fixed_iteration_run_completes(self, spec, dataset):
        training = TrainingSpec(task="logreg", tolerance=1e-9, seed=1,
                                max_iter=500)
        adaptive = AdaptiveTrainer(optimizer_for(spec)).train(
            dataset, training, fixed_iterations=30
        )
        assert adaptive.iterations <= 30
        assert adaptive.report.iteration_estimates is None


class TestML4allAdaptive:
    def system(self, spec):
        from repro.api import ML4all

        return ML4all(
            cluster_spec=spec,
            seed=7,
            speculation=speculation(),
        )

    def test_adaptive_train_returns_trace(self, spec, dataset):
        system = self.system(spec)
        model = system.train(dataset, epsilon=1e-2, max_iter=400,
                             adaptive=True)
        assert model.trace is not None
        assert model.adaptive is not None
        assert model.trace.total_iterations == model.result.iterations or \
            model.trace.switched
        assert system.calibration.observations > 0

    def test_default_train_has_no_trace(self, spec, dataset):
        system = self.system(spec)
        model = system.train(dataset, epsilon=1e-2, max_iter=400)
        assert model.trace is None
        assert model.adaptive is None
        assert not model.switched

    def test_adaptive_rejects_fully_pinned_plans(self, spec, dataset):
        from repro.errors import PlanError

        system = self.system(spec)
        with pytest.raises(PlanError):
            system.train(dataset, epsilon=1e-2, algorithm="sgd",
                         sampler="shuffle", adaptive=True)

    def test_calibration_store_shared_with_service(self, spec, dataset):
        system = self.system(spec)
        system.train(dataset, epsilon=1e-2, max_iter=400, adaptive=True)
        assert system.service().calibration is system.calibration

    def test_calibration_path_round_trip(self, spec, dataset, tmp_path):
        from repro.api import ML4all

        path = str(tmp_path / "calibration.json")
        system = ML4all(cluster_spec=spec, seed=7,
                        speculation=speculation(), calibration_path=path)
        system.train(dataset, epsilon=1e-2, max_iter=400, adaptive=True)
        system.save_calibration()

        reborn = ML4all(cluster_spec=spec, seed=7, calibration_path=path)
        assert reborn.calibration.observations == \
            system.calibration.observations


class TestTimeBudgetAcrossSegments:
    def test_segment_training_deducts_elapsed_budget(self, spec):
        trainer = AdaptiveTrainer(optimizer_for(spec))
        trainer.optimizer.engine.charge(5.0, "test", jitter=False)
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                time_budget_s=8.0, seed=0)
        segment = trainer._segment_training(training, 100, run_start=0.0)
        assert segment.time_budget_s == pytest.approx(3.0)
        assert segment.max_iter == 100

    def test_spent_budget_stays_positive(self, spec):
        trainer = AdaptiveTrainer(optimizer_for(spec))
        trainer.optimizer.engine.charge(10.0, "test", jitter=False)
        training = TrainingSpec(task="logreg", tolerance=1e-2,
                                time_budget_s=8.0, seed=0)
        segment = trainer._segment_training(training, 100, run_start=0.0)
        assert 0 < segment.time_budget_s <= 1e-9

    def test_no_budget_passes_through(self, spec):
        trainer = AdaptiveTrainer(optimizer_for(spec))
        training = TrainingSpec(task="logreg", tolerance=1e-2, seed=0)
        segment = trainer._segment_training(training, 50, run_start=0.0)
        assert segment.time_budget_s is None


class TestRemainingIterations:
    def test_difference_of_positions_on_the_curve(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        # From error 0.1 (i=10) to error 0.01 (i=100): 90 more.
        assert remaining_iterations(curve, 0.1, 0.01) == 90

    def test_already_converged_is_one(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        assert remaining_iterations(curve, 0.005, 0.01) == 1

    def test_non_finite_delta_is_one(self):
        curve = FittedCurve("inverse", (1.0,), 0.99, 50)
        assert remaining_iterations(curve, float("inf"), 0.01) == 1
