"""Persistent plan store: backends, serialization, warm restart, failure
modes (corruption, version mismatch, concurrent writers)."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.plans import TrainingSpec
from repro.service import (
    JsonFileBackend,
    MemoryBackend,
    OptimizerService,
    PlanStoreError,
    SqliteBackend,
    entry_from_dict,
    entry_to_dict,
    open_backend,
    report_from_dict,
    report_to_dict,
)
from repro.service.backends import STORE_FORMAT

from support import FaultyBackend, make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=2000, d=20, task="logreg", spec=spec, seed=3,
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02,
    )


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-2, seed=1)


def make_service(spec, **kwargs):
    kwargs.setdefault("speculation", SpeculationSettings(
        sample_size=400, time_budget_s=0.5, max_speculation_iters=800
    ))
    return OptimizerService(spec=spec, seed=5, **kwargs)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------
class TestBackends:
    @pytest.mark.parametrize("factory", [
        lambda tmp: MemoryBackend(),
        lambda tmp: JsonFileBackend(str(tmp / "plans.json")),
        lambda tmp: SqliteBackend(str(tmp / "plans.db")),
    ], ids=["memory", "json", "sqlite"])
    def test_store_load_delete_clear(self, tmp_path, factory):
        backend = factory(tmp_path)
        assert backend.load() == {}
        backend.store("k1", {"a": 1})
        backend.store("k2", {"b": [1, 2]})
        backend.store("k1", {"a": 2})  # overwrite
        assert backend.load() == {"k1": {"a": 2}, "k2": {"b": [1, 2]}}
        assert len(backend) == 2
        backend.delete("k1")
        backend.delete("missing")  # no-op
        assert backend.load() == {"k2": {"b": [1, 2]}}
        backend.clear()
        assert backend.load() == {}
        backend.close()

    def test_open_backend_picks_by_extension(self, tmp_path):
        assert isinstance(
            open_backend(str(tmp_path / "x.db")), SqliteBackend
        )
        assert isinstance(
            open_backend(str(tmp_path / "x.SQLITE")), SqliteBackend
        )
        assert isinstance(
            open_backend(str(tmp_path / "x.json")), JsonFileBackend
        )
        assert isinstance(
            open_backend(str(tmp_path / "x")), JsonFileBackend
        )

    def test_json_survives_process_restart(self, tmp_path):
        path = str(tmp_path / "plans.json")
        JsonFileBackend(path).store("k", {"v": 1})
        assert JsonFileBackend(path).load() == {"k": {"v": 1}}

    def test_sqlite_survives_process_restart(self, tmp_path):
        path = str(tmp_path / "plans.db")
        SqliteBackend(path).store("k", {"v": 1})
        assert SqliteBackend(path).load() == {"k": {"v": 1}}

    @pytest.mark.parametrize("content", [
        "", "{not json", '{"entries": {"k": {}}}',  # truncated / no format
        '[1, 2, 3]',                                # wrong container type
    ], ids=["empty", "garbage", "formatless", "list"])
    def test_corrupted_json_store_starts_cold(self, tmp_path, content):
        path = tmp_path / "plans.json"
        path.write_text(content)
        with pytest.warns(UserWarning, match="cold"):
            backend = JsonFileBackend(str(path))
        assert backend.load() == {}
        # The backend still works for writes after the cold start.
        backend.store("k", {"v": 1})
        assert JsonFileBackend(str(path)).load() == {"k": {"v": 1}}

    def test_json_future_format_version_starts_cold(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps(
            {"format": STORE_FORMAT + 1, "entries": {"k": {"v": 1}}}
        ))
        with pytest.warns(UserWarning, match="unsupported format"):
            backend = JsonFileBackend(str(path))
        assert backend.load() == {}

    def test_sqlite_on_non_database_file_disables_persistence(self, tmp_path):
        path = tmp_path / "plans.db"
        path.write_text("this is not a sqlite database")
        with pytest.warns(UserWarning):
            backend = SqliteBackend(str(path))
        assert backend.load() == {}
        backend.store("k", {"v": 1})  # silently dropped, never raises
        assert backend.load() == {}

    def test_concurrent_writers_never_interleave_partial_json(self, tmp_path):
        """Readers racing writers always see one complete JSON store."""
        path = str(tmp_path / "plans.json")
        backend = JsonFileBackend(path)
        stop = threading.Event()
        failures = []

        def writer(i):
            for n in range(25):
                backend.store(f"key-{i}-{n}", {"payload": "x" * 256, "n": n})

        def reader():
            while not stop.is_set():
                try:
                    with open(path) as handle:
                        payload = json.load(handle)
                    assert payload["format"] == STORE_FORMAT
                except FileNotFoundError:
                    pass
                except Exception as exc:  # interleaved / partial JSON
                    failures.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        assert failures == []
        assert len(backend.load()) == 100

    def test_json_get_sees_other_writers_despite_snapshot(self, tmp_path):
        """The parsed-snapshot cache is keyed on the file's stat
        identity, so point lookups still observe entries written by a
        sibling backend (a different 'process')."""
        path = str(tmp_path / "plans.json")
        a, b = JsonFileBackend(path), JsonFileBackend(path)
        a.store("k1", {"v": 1})
        assert b.get("k1") == {"v": 1}
        assert b.get("nope") is None   # snapshot now warm in b...
        a.store("k2", {"v": 2})
        assert b.get("k2") == {"v": 2}  # ...but invalidated by a's write

    def test_json_disjoint_writers_converge(self, tmp_path):
        """Two backend instances (two 'processes') over one JSON file:
        writes to disjoint keys must all survive, because every
        mutation re-reads the file before rewriting it."""
        path = str(tmp_path / "plans.json")
        a, b = JsonFileBackend(path), JsonFileBackend(path)
        a.store("from-a-1", {"v": 1})
        b.store("from-b-1", {"v": 2})
        a.store("from-a-2", {"v": 3})
        b.delete("from-b-1")
        merged = JsonFileBackend(path).load()
        assert merged == {"from-a-1": {"v": 1}, "from-a-2": {"v": 3}}

    def test_sqlite_concurrent_writers(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "plans.db"))

        def writer(i):
            for n in range(20):
                backend.store(f"key-{i}-{n}", {"n": n})

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(backend.load()) == 80


# ---------------------------------------------------------------------------
# fault injection (FaultyBackend wraps the real backends)
# ---------------------------------------------------------------------------
class TestFaultyBackend:
    @pytest.mark.parametrize("factory", [
        lambda tmp: MemoryBackend(),
        lambda tmp: JsonFileBackend(str(tmp / "plans.json")),
        lambda tmp: SqliteBackend(str(tmp / "plans.db")),
    ], ids=["memory", "json", "sqlite"])
    def test_abort_faults_leave_inner_untouched(self, tmp_path, factory):
        """timeout/reset fire *before* the operation: the wrapped real
        backend must not have seen the write, and the retry lands."""
        inner = factory(tmp_path)
        backend = FaultyBackend(inner, plan={
            "store": ["timeout", None, "reset", None],
        })
        with pytest.raises(TimeoutError):
            backend.store("k1", {"v": 1})
        assert inner.load() == {}
        backend.store("k1", {"v": 1})      # the retry
        with pytest.raises(ConnectionResetError):
            backend.store("k2", {"v": 2})
        backend.store("k2", {"v": 2})
        assert inner.load() == {"k1": {"v": 1}, "k2": {"v": 2}}
        assert backend.injected == [("store", "timeout"), ("store", "reset")]
        backend.close()

    @pytest.mark.parametrize("factory", [
        lambda tmp: JsonFileBackend(str(tmp / "plans.json")),
        lambda tmp: SqliteBackend(str(tmp / "plans.db")),
    ], ids=["json", "sqlite"])
    def test_fail_after_write_is_an_ambiguous_ack(self, tmp_path, factory):
        """fail_after_write raises *after* the mutation landed -- the
        caller cannot tell success from failure, exactly like a dropped
        TCP ack.  A blind retry must therefore be idempotent."""
        inner = factory(tmp_path)
        backend = FaultyBackend(inner, plan={
            "store": ["fail_after_write"],
            "update": ["fail_after_write"],
        })
        with pytest.raises(ConnectionResetError):
            backend.store("k", {"v": 1})
        assert inner.get("k") == {"v": 1}  # ...but it landed
        with pytest.raises(ConnectionResetError):
            backend.update("k", lambda cur: {"v": cur["v"] + 1})
        assert inner.get("k") == {"v": 2}  # the CAS applied too
        # A blind store retry of the same payload converges.
        backend.store("k", {"v": 2})
        assert inner.get("k") == {"v": 2}
        backend.close()

    def test_seeded_schedule_is_reproducible(self):
        """Two wrappers with the same seed inject the identical fault
        sequence over the identical operation sequence."""
        def hammer(backend):
            for n in range(60):
                try:
                    backend.store(f"k{n % 7}", {"n": n})
                except (TimeoutError, ConnectionResetError):
                    pass
                try:
                    backend.get(f"k{n % 5}")
                except (TimeoutError, ConnectionResetError):
                    pass
            return list(backend.injected)

        first = hammer(FaultyBackend(MemoryBackend(), seed=11, rate=0.3))
        second = hammer(FaultyBackend(MemoryBackend(), seed=11, rate=0.3))
        assert first == second
        assert first  # the schedule actually fired at this rate
        assert {kind for _, kind in first} <= set(FaultyBackend.KINDS)

    def test_service_survives_faulty_plan_store(
        self, spec, dataset, training
    ):
        """A flaky persistence layer degrades the service to in-memory
        caching -- same contract the ExplodingBackend test pins, but
        through the generic fault double with a real backend beneath."""
        inner = MemoryBackend()
        backend = FaultyBackend(inner, plan={"store": ["reset"]})
        service = make_service(spec, cache_backend=backend)
        with pytest.warns(UserWarning, match="plan store write failed"):
            result = service.optimize(dataset, training)
        assert not result.cache_hit
        assert inner.load() == {}          # the write really was lost
        # The in-memory cache still serves, and the *next* persistence
        # attempt (a fresh fingerprint) goes through cleanly.
        assert service.optimize(dataset, training).cache_hit
        other = TrainingSpec(task="logreg", tolerance=5e-3, seed=1)
        service.optimize(dataset, other)
        assert len(inner) == 1


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------
class TestSerialization:
    def _report(self, spec, dataset, training):
        service = make_service(spec)
        return service.optimize(dataset, training).report

    def test_report_round_trip_preserves_decision(
        self, spec, dataset, training
    ):
        report = self._report(spec, dataset, training)
        # Through actual JSON text, like a backend would store it.
        restored = report_from_dict(
            json.loads(json.dumps(report_to_dict(report)))
        )
        assert restored.chosen_plan == report.chosen_plan
        assert restored.chosen.total_s == pytest.approx(
            report.chosen.total_s
        )
        assert len(restored.candidates) == len(report.candidates)
        assert [str(c.plan) for c in restored.ranking()] == \
            [str(c.plan) for c in report.ranking()]

    def test_speculation_artifacts_round_trip(self, spec, dataset, training):
        report = self._report(spec, dataset, training)
        restored = report_from_dict(
            json.loads(json.dumps(report_to_dict(report)))
        )
        assert set(restored.iteration_estimates) == \
            set(report.iteration_estimates)
        for alg, est in report.iteration_estimates.items():
            back = restored.iteration_estimates[alg]
            assert back.estimated_iterations == est.estimated_iterations
            assert back.curve.model == est.curve.model
            assert back.curve.params == pytest.approx(est.curve.params)
            np.testing.assert_allclose(
                back.speculation_errors, est.speculation_errors
            )
            # The restored curve is functional, not just data: re-costing
            # a stale entry queries it for T(epsilon).
            assert back.curve.iterations_for(training.tolerance) == \
                est.curve.iterations_for(training.tolerance)

    def test_entry_round_trip_keeps_calibration_stamp(
        self, spec, dataset, training
    ):
        report = self._report(spec, dataset, training)
        entry = entry_to_dict(report, calibration_version=7,
                              calibration_digest="abc123")
        restored, version, digest, written_at = entry_from_dict(
            json.loads(json.dumps(entry))
        )
        assert version == 7
        assert digest == "abc123"
        assert restored.chosen_plan == report.chosen_plan
        # The write stamp defaults to "now" and survives the round trip.
        assert written_at == pytest.approx(time.time(), abs=60)

    def test_stampless_entry_decodes_with_unknown_age(
        self, spec, dataset, training
    ):
        # Entries persisted before written_at existed (same format
        # version) must keep loading; they report no age and never
        # expire.
        report = self._report(spec, dataset, training)
        entry = entry_to_dict(report, calibration_version=1,
                              calibration_digest="abc")
        del entry["written_at"]
        _, _, _, written_at = entry_from_dict(entry)
        assert written_at is None

    def test_entry_format_mismatch_is_rejected(self, spec, dataset, training):
        report = self._report(spec, dataset, training)
        entry = entry_to_dict(report, calibration_version=0,
                              calibration_digest="abc123")
        entry["entry_format"] = 999
        with pytest.raises(PlanStoreError, match="format"):
            entry_from_dict(entry)

    def test_malformed_entry_is_rejected(self):
        with pytest.raises(PlanStoreError):
            entry_from_dict({"entry_format": 1, "calibration_version": 0,
                             "report": {"chosen": "nonsense"}})


# ---------------------------------------------------------------------------
# warm restart through the service
# ---------------------------------------------------------------------------
class TestWarmRestart:
    @pytest.mark.parametrize("name", ["plans.json", "plans.db"])
    def test_restarted_service_answers_from_the_store(
        self, spec, dataset, training, tmp_path, monkeypatch, name
    ):
        path = str(tmp_path / name)
        first = make_service(spec, cache_path=path)
        cold = first.optimize(dataset, training)
        assert not cold.cache_hit
        first.close()

        speculations = []
        original = SpeculativeEstimator.estimate_all

        def counting(self, *args, **kwargs):
            speculations.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpeculativeEstimator, "estimate_all", counting)
        restarted = make_service(spec, cache_path=path)
        assert restarted.warm_loaded == 1
        warm = restarted.optimize(dataset, training)
        assert warm.cache_hit
        assert speculations == []  # warm restart: no re-speculation
        assert str(warm.chosen_plan) == str(cold.chosen_plan)
        assert warm.report.chosen.total_s == pytest.approx(
            cold.report.chosen.total_s
        )
        restarted.close()

    def test_stale_calibration_stamp_recosts_not_trusts(
        self, spec, dataset, training, tmp_path, monkeypatch
    ):
        """An entry persisted under old calibration must be re-priced
        from its stored speculation, not served as-is."""
        plans = str(tmp_path / "plans.json")
        calibration = str(tmp_path / "calibration.json")
        first = make_service(
            spec, cache_path=plans, calibration_path=calibration
        )
        cold = first.optimize(dataset, training)
        # The store learns *after* the entry was persisted.
        first.calibration.observe("bgd", spec, cost_ratio=3.0)
        first.save_calibration()
        first.close()

        speculations = []
        original = SpeculativeEstimator.estimate_all

        def counting(self, *args, **kwargs):
            speculations.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpeculativeEstimator, "estimate_all", counting)
        restarted = make_service(
            spec, cache_path=plans, calibration_path=calibration
        )
        result = restarted.optimize(dataset, training)
        assert result.recalibrated
        assert not result.cache_hit
        assert speculations == []  # recost uses persisted speculation
        assert result.report.calibrated
        bgd = [c for c in result.report.candidates
               if c.plan.algorithm == "bgd"]
        cold_bgd = [c for c in cold.report.candidates
                    if c.plan.algorithm == "bgd"]
        assert bgd[0].per_iteration_s == pytest.approx(
            3.0 * cold_bgd[0].per_iteration_s, rel=1e-6
        )
        # The re-stamped entry is persisted: yet another restart hits.
        third = make_service(
            spec, cache_path=plans, calibration_path=calibration
        )
        assert third.optimize(dataset, training).cache_hit

    def test_same_version_different_state_is_not_trusted(
        self, spec, dataset, training, tmp_path
    ):
        """A dead process's calibration v-N stamp must not look current
        to a store that reached v-N through a *different* history --
        the stamp compares correction content, not counters."""
        plans = str(tmp_path / "plans.json")
        first = make_service(spec, cache_path=plans)
        # Price the entry under one v1 correction state...
        first.calibration.observe("bgd", spec, cost_ratio=3.0)
        first.optimize(dataset, training)
        assert first.calibration.version == 1
        first.close()

        # ...restart WITHOUT a persisted calibration store: the fresh
        # store learns something unrelated and also reaches v1.
        restarted = make_service(spec, cache_path=plans)
        restarted.calibration.observe("sgd", spec, cost_ratio=9.0)
        assert restarted.calibration.version == 1
        result = restarted.optimize(dataset, training)
        assert result.recalibrated     # re-costed, not blindly served
        assert not result.cache_hit

    def test_pristine_stores_share_stamps(
        self, spec, dataset, training, tmp_path
    ):
        """Every pristine store serves identity factors and digests
        identically: a calibration-free restart serves warm-loaded
        entries as plain hits."""
        plans = str(tmp_path / "plans.json")
        first = make_service(spec, cache_path=plans)
        first.optimize(dataset, training)
        first.close()
        restarted = make_service(spec, cache_path=plans)
        assert restarted.optimize(dataset, training).cache_hit

    def test_evicted_entry_read_through_from_backend(
        self, spec, dataset, training, tmp_path, monkeypatch
    ):
        """An entry the tiny in-memory cache evicted is fetched from the
        persistent store instead of being re-speculated."""
        path = str(tmp_path / "plans.json")
        service = make_service(spec, cache_path=path, cache_size=1)
        first = service.optimize(dataset, training)
        other = TrainingSpec(task="logreg", tolerance=5e-3, seed=1)
        service.optimize(dataset, other)   # evicts the first entry
        assert first.fingerprint not in service.cache

        speculations = []
        original = SpeculativeEstimator.estimate_all

        def counting(self, *args, **kwargs):
            speculations.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpeculativeEstimator, "estimate_all", counting)
        again = service.optimize(dataset, training)
        assert again.cache_hit             # promoted from disk
        assert speculations == []
        assert str(again.chosen_plan) == str(first.chosen_plan)

    def test_corrupted_store_file_falls_back_to_cold_start(
        self, spec, dataset, training, tmp_path
    ):
        path = tmp_path / "plans.json"
        path.write_text('{"format": 1, "entr')  # truncated mid-write
        with pytest.warns(UserWarning, match="cold"):
            service = make_service(spec, cache_path=str(path))
        assert service.warm_loaded == 0
        result = service.optimize(dataset, training)  # must not crash
        assert not result.cache_hit
        # And the store heals: the fresh entry is persisted and loadable.
        healed = make_service(spec, cache_path=str(path))
        assert healed.warm_loaded == 1

    def test_incompatible_entry_is_skipped_not_trusted(
        self, spec, dataset, training, tmp_path
    ):
        path = str(tmp_path / "plans.json")
        first = make_service(spec, cache_path=path)
        first.optimize(dataset, training)
        first.close()

        with open(path) as handle:
            payload = json.load(handle)
        (key,) = payload["entries"]
        payload["entries"][key]["entry_format"] = 999
        with open(path, "w") as handle:
            json.dump(payload, handle)

        with pytest.warns(UserWarning, match="skipping persisted plan"):
            restarted = make_service(spec, cache_path=path)
        assert restarted.warm_loaded == 0
        assert not restarted.optimize(dataset, training).cache_hit

    def test_memory_backend_exercises_write_through(
        self, spec, dataset, training
    ):
        backend = MemoryBackend()
        service = make_service(spec, cache_backend=backend)
        result = service.optimize(dataset, training)
        persisted = backend.load()
        assert set(persisted) == {result.fingerprint}
        report, version, digest, _ = entry_from_dict(
            persisted[result.fingerprint]
        )
        assert str(report.chosen_plan) == str(result.chosen_plan)
        assert version == service.calibration.version
        assert digest == service.calibration.state_digest()

    def test_persistence_failure_degrades_not_crashes(
        self, spec, dataset, training
    ):
        class ExplodingBackend(MemoryBackend):
            def store(self, key, entry):
                raise OSError("disk full")

        service = make_service(spec, cache_backend=ExplodingBackend())
        with pytest.warns(UserWarning, match="plan store write failed"):
            result = service.optimize(dataset, training)
        assert not result.cache_hit
        # The in-memory cache still works.
        assert service.optimize(dataset, training).cache_hit


# ---------------------------------------------------------------------------
# recalibration coalescing
# ---------------------------------------------------------------------------
class TestRecalibrationCoalescing:
    def test_concurrent_stale_requests_recost_once(
        self, spec, dataset, training
    ):
        service = make_service(spec)
        service.optimize(dataset, training)
        service.calibration.observe("bgd", spec, cost_ratio=2.0)

        # Slow every optimizer down so all threads overlap the recost.
        real_make = service._make_optimizer

        def slow_make(*args, **kwargs):
            optimizer = real_make(*args, **kwargs)
            real_optimize = optimizer.optimize

            def slow_optimize(*a, **kw):
                time.sleep(0.15)
                return real_optimize(*a, **kw)

            optimizer.optimize = slow_optimize
            return optimizer

        service._make_optimizer = slow_make

        barrier = threading.Barrier(6)
        results = []

        def request():
            barrier.wait()
            results.append(service.optimize(dataset, training))

        threads = [threading.Thread(target=request) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(results) == 6
        # Exactly one caller re-priced the entry; everyone else shared it.
        assert service.recalibrated == 1
        assert service.coalesced == 5
        assert all(r.recalibrated for r in results)
        reference = next(r for r in results if not r.coalesced).report
        assert all(r.report is reference for r in results)
