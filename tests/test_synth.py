"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse as sp

from repro.data.synth import make_classification, make_regression
from repro.errors import DataFormatError


class TestClassification:
    def test_shapes_and_labels(self):
        X, y, w_star = make_classification(100, 10,
                                           rng=np.random.default_rng(0))
        assert X.shape == (100, 10)
        assert set(np.unique(y)) <= {-1.0, 1.0}
        assert w_star.shape == (10,)
        assert np.linalg.norm(w_star) == pytest.approx(1.0)

    def test_sparse_output(self):
        X, y, _ = make_classification(200, 50, density=0.1, sparse=True,
                                      rng=np.random.default_rng(0))
        assert sp.issparse(X)
        assert X.nnz < 200 * 50 * 0.3

    def test_margin_mixture(self):
        X, y, w_star = make_classification(
            2000, 20, separability=2.0, hard_fraction=0.3, label_noise=0.0,
            rng=np.random.default_rng(1),
        )
        margins = y * (X @ w_star)
        # Easy mass at >= 2.0, hard mass near 0.
        easy = (margins >= 1.9).mean()
        hard = (np.abs(margins) < 1.0).mean()
        assert easy > 0.5
        assert 0.15 < hard < 0.45

    def test_hard_fraction_zero_fully_separable(self):
        X, y, w_star = make_classification(
            500, 10, separability=2.0, hard_fraction=0.0,
            rng=np.random.default_rng(1),
        )
        margins = y * (X @ w_star)
        assert margins.min() > 1.5

    def test_label_noise_flips(self):
        X, y, w_star = make_classification(
            5000, 10, separability=2.0, hard_fraction=0.0, label_noise=0.1,
            rng=np.random.default_rng(2),
        )
        margins = y * (X @ w_star)
        flipped = (margins < 0).mean()
        assert 0.05 < flipped < 0.15

    def test_feature_scale(self):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        X1, _, _ = make_classification(50, 5, rng=rng1)
        X2, _, _ = make_classification(50, 5, feature_scale=2.0, rng=rng2)
        np.testing.assert_allclose(np.asarray(X2), 2 * np.asarray(X1))

    def test_sorted_row_order_groups_labels(self):
        _, y, _ = make_classification(400, 5, row_order="sorted",
                                      rng=np.random.default_rng(4))
        # After a stable sort by label, y is non-decreasing.
        assert np.all(np.diff(y) >= 0)

    def test_shuffled_order_mixes_labels(self):
        _, y, _ = make_classification(400, 5, row_order="shuffled",
                                      rng=np.random.default_rng(4))
        changes = np.sum(np.diff(y) != 0)
        assert changes > 50

    def test_sparse_margin_mixture_preserves_pattern(self):
        X, _, _ = make_classification(
            300, 40, density=0.1, sparse=True, separability=2.0,
            rng=np.random.default_rng(5),
        )
        # Density unchanged by the margin adjustment (pattern preserved).
        density = X.nnz / (300 * 40)
        assert density == pytest.approx(0.1, abs=0.03)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataFormatError):
            make_classification(0, 5, rng=rng)
        with pytest.raises(DataFormatError):
            make_classification(10, 5, density=0.0, rng=rng)
        with pytest.raises(DataFormatError):
            make_classification(10, 5, label_noise=0.7, rng=rng)
        with pytest.raises(DataFormatError):
            make_classification(10, 5, hard_fraction=1.5, rng=rng)
        with pytest.raises(DataFormatError):
            make_classification(10, 5, row_order="spiral", rng=rng)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_rng_seed(self, seed):
        X1, y1, w1 = make_classification(30, 4,
                                         rng=np.random.default_rng(seed))
        X2, y2, w2 = make_classification(30, 4,
                                         rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(np.asarray(X1), np.asarray(X2))
        np.testing.assert_array_equal(y1, y2)


class TestRegression:
    def test_shapes(self):
        X, y, w_star = make_regression(100, 8, rng=np.random.default_rng(0))
        assert X.shape == (100, 8)
        assert y.shape == (100,)

    def test_noise_controls_residuals(self):
        X, y, w_star = make_regression(2000, 8, noise=0.01,
                                       rng=np.random.default_rng(1))
        residuals = y - X @ w_star
        assert np.std(residuals) < 0.05 * np.std(y)

    def test_feature_scale_scales_targets_too(self):
        X1, y1, _ = make_regression(50, 4, rng=np.random.default_rng(2))
        X2, y2, _ = make_regression(50, 4, feature_scale=3.0,
                                    rng=np.random.default_rng(2))
        np.testing.assert_allclose(y2, 3 * y1)

    def test_sparse_regression(self):
        X, y, _ = make_regression(100, 30, density=0.2, sparse=True,
                                  rng=np.random.default_rng(3))
        assert sp.issparse(X)

    def test_validation(self):
        with pytest.raises(DataFormatError):
            make_regression(0, 3, rng=np.random.default_rng(0))
        with pytest.raises(DataFormatError):
            make_regression(10, 3, row_order="byhash",
                            rng=np.random.default_rng(0))
