"""Tests for the concurrent OptimizerService (plan cache + coalescing)."""

import time

import pytest

from repro.cluster import ClusterSpec
from repro.core.iterations import SpeculationSettings
from repro.core.plans import TrainingSpec
from repro.errors import ConstraintError
from repro.service import (
    OptimizerService,
    PlanCache,
    ServiceRequest,
    workload_fingerprint,
)

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(
        n_phys=2000, d=20, task="logreg", spec=spec, seed=3,
        separability=1.2, hard_fraction=0.3, noise_scale=0.3,
        label_noise=0.02,
    )


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-2, seed=1)


@pytest.fixture
def service(spec):
    return OptimizerService(
        spec=spec,
        seed=5,
        speculation=SpeculationSettings(
            sample_size=400, time_budget_s=0.5, max_speculation_iters=800
        ),
    )


class TestPlanCache:
    def test_get_put_roundtrip(self):
        cache = PlanCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = PlanCache(maxsize=4)
        assert cache.get("nope") is None
        assert cache.get("nope", "fallback") == "fallback"

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats().evictions == 1

    def test_stats_counters(self):
        cache = PlanCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert "hit" in stats.summary()

    def test_clear(self):
        cache = PlanCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestFingerprint:
    def test_stable_across_calls(self, service, dataset, training):
        assert service.fingerprint(dataset, training) == \
            service.fingerprint(dataset, training)

    def test_equal_for_equal_workloads(self, spec, dataset, training):
        a = workload_fingerprint(dataset.stats, training, spec)
        b = workload_fingerprint(dataset.stats, training, spec)
        assert a == b

    def test_tolerance_change_invalidates(self, service, dataset, training):
        import dataclasses

        tighter = dataclasses.replace(training, tolerance=1e-4)
        assert service.fingerprint(dataset, training) != \
            service.fingerprint(dataset, tighter)

    def test_cluster_spec_change_invalidates(self, spec, dataset, training):
        base = OptimizerService(spec=spec, seed=5)
        bigger = OptimizerService(
            spec=spec.with_overrides(n_nodes=8), seed=5
        )
        assert base.fingerprint(dataset, training) != \
            bigger.fingerprint(dataset, training)

    def test_fixed_iterations_invalidates(self, service, dataset, training):
        assert service.fingerprint(dataset, training) != \
            service.fingerprint(dataset, training, fixed_iterations=100)

    def test_algorithm_override_invalidates(self, service, dataset, training):
        assert service.fingerprint(dataset, training) != \
            service.fingerprint(dataset, training, algorithms=("bgd",))

    def test_representation_invalidates(self, service, dataset, training):
        assert service.fingerprint(dataset, training) != \
            service.fingerprint(dataset.as_binary(), training)

    def test_stats_drive_identity_with_fixed_iterations(
        self, spec, service, training
    ):
        """Without speculation the answer depends only on the stats, so
        same-stats datasets share one cache entry."""
        a = make_dataset(n_phys=500, d=10, spec=spec, seed=1)
        b = make_dataset(n_phys=500, d=10, spec=spec, seed=2)
        assert service.fingerprint(a, training, fixed_iterations=100) == \
            service.fingerprint(b, training, fixed_iterations=100)

    def test_data_content_invalidates_when_speculating(
        self, spec, service, training
    ):
        """Speculation runs on the actual data: same stats, different
        data must not collide in the cache."""
        a = make_dataset(n_phys=500, d=10, spec=spec, seed=1)
        b = make_dataset(n_phys=500, d=10, spec=spec, seed=2)
        assert service.fingerprint(a, training) != \
            service.fingerprint(b, training)
        same = make_dataset(n_phys=500, d=10, spec=spec, seed=1)
        assert service.fingerprint(a, training) == \
            service.fingerprint(same, training)


class TestOptimizerService:
    def test_cold_miss_then_warm_hit(self, service, dataset, training):
        first = service.optimize(dataset, training)
        second = service.optimize(dataset, training)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.report is first.report
        assert service.computed == 1
        assert service.cache_stats().hits == 1

    def test_cached_report_matches_direct_optimizer(
        self, service, dataset, training
    ):
        direct = service._make_optimizer().optimize(dataset, training)
        served = service.optimize(dataset, training)
        assert served.report.chosen_plan == direct.chosen_plan
        assert [c.plan for c in served.report.candidates] == \
            [c.plan for c in direct.candidates]

    def test_warm_hit_is_fast(self, service, dataset, training):
        cold = service.optimize(dataset, training)
        warm_s = min(
            service.optimize(dataset, training).wall_s for _ in range(5)
        )
        assert warm_s < cold.wall_s

    def test_tolerance_change_misses(self, service, dataset, training):
        import dataclasses

        service.optimize(dataset, training)
        result = service.optimize(
            dataset, dataclasses.replace(training, tolerance=5e-3)
        )
        assert not result.cache_hit
        assert service.computed == 2

    def test_fixed_iterations_requests_cache_separately(
        self, service, dataset, training
    ):
        a = service.optimize(dataset, training, fixed_iterations=100)
        b = service.optimize(dataset, training, fixed_iterations=200)
        c = service.optimize(dataset, training, fixed_iterations=100)
        assert not a.cache_hit and not b.cache_hit
        assert c.cache_hit
        assert all(
            cand.estimated_iterations == 100
            for cand in c.report.candidates
        )

    def test_algorithm_override_restricts_space(
        self, service, dataset, training
    ):
        result = service.optimize(
            dataset, training, fixed_iterations=50, algorithms=("bgd",)
        )
        assert len(result.report.candidates) == 1
        assert str(result.chosen_plan) == "BGD"

    def test_constraint_error_propagates_and_is_not_cached(
        self, service, dataset
    ):
        import dataclasses

        impossible = TrainingSpec(
            task="logreg", tolerance=1e-2, time_budget_s=1e-9, seed=1
        )
        with pytest.raises(ConstraintError):
            service.optimize(dataset, impossible, fixed_iterations=100)
        assert len(service.cache) == 0
        # The failed computation does not poison later requests.
        relaxed = dataclasses.replace(impossible, time_budget_s=None)
        assert service.optimize(
            dataset, relaxed, fixed_iterations=100
        ).report is not None

    def test_engine_isolation_between_requests(
        self, service, dataset, training
    ):
        """Each computation runs on a fresh simulated cluster."""
        first = service.optimize(dataset, training)
        second = service.optimize(
            dataset, training, fixed_iterations=123
        )
        assert first.report.speculation_sim_s > 0
        assert second.report.speculation_sim_s == 0


class TestOptimizeMany:
    def test_order_preserved(self, service, dataset, training):
        requests = [
            ServiceRequest(dataset, training, fixed_iterations=n)
            for n in (50, 100, 150)
        ]
        results = service.optimize_many(requests, max_workers=3)
        iters = [
            r.report.candidates[0].estimated_iterations for r in results
        ]
        assert iters == [50, 100, 150]

    def test_identical_requests_compute_once(
        self, service, dataset, training
    ):
        requests = [(dataset, training)] * 12
        results = service.optimize_many(requests, max_workers=6)
        assert len(results) == 12
        assert service.computed == 1
        reference = results[0].report
        assert all(r.report is reference for r in results)

    def test_tuple_and_request_forms(self, service, dataset, training):
        results = service.optimize_many(
            [
                (dataset, training),
                (dataset, training, 75),
                ServiceRequest(dataset, training),
            ],
            max_workers=1,
        )
        assert len(results) == 3
        assert results[2].cache_hit  # same workload as the first

    def test_empty_batch(self, service):
        assert service.optimize_many([]) == []

    def test_bad_request_type_raises(self, service):
        with pytest.raises(TypeError):
            service.optimize_many([42])

    def test_stats_summary_renders(self, service, dataset, training):
        service.optimize_many([(dataset, training)] * 3, max_workers=2)
        text = service.stats_summary()
        assert "plan cache" in text
        assert "requests" in text


class TestML4allServiceAPI:
    def test_optimize_many_via_facade(self, spec):
        from repro.api import ML4all

        system = ML4all(cluster_spec=spec, seed=7)
        results = system.optimize_many(
            ["adult", {"dataset": "adult", "epsilon": 0.05}],
            max_iter=200,
            fixed_iterations=80,
        )
        assert len(results) == 2
        assert all(r.report.chosen_plan is not None for r in results)
        # The facade reuses one service, so the warm cache persists.
        again = system.optimize_many(["adult"], max_iter=200,
                                     fixed_iterations=80)
        assert again[0].cache_hit

    def test_facade_service_is_shared(self, spec):
        from repro.api import ML4all

        system = ML4all(cluster_spec=spec, seed=7)
        assert system.service() is system.service()

    def test_per_request_algorithm_pin(self, spec):
        from repro.api import ML4all

        system = ML4all(cluster_spec=spec, seed=7)
        (result,) = system.optimize_many(
            [{"dataset": "adult", "algorithm": "bgd"}],
            max_iter=100,
            fixed_iterations=60,
        )
        assert str(result.chosen_plan) == "BGD"

    def test_repeated_registry_names_resolve_once(self, spec, monkeypatch):
        from repro.api import ML4all

        system = ML4all(cluster_spec=spec, seed=7)
        calls = []
        original = ML4all.load_dataset

        def counting_load(self, source, **kwargs):
            calls.append(source)
            return original(self, source, **kwargs)

        monkeypatch.setattr(ML4all, "load_dataset", counting_load)
        results = system.optimize_many(
            ["adult"] * 5, max_iter=100, fixed_iterations=40
        )
        assert len(results) == 5
        # One registry resolution for the batch, not one per request.
        assert calls.count("adult") == 1

    def test_service_config_ignored_after_creation_warns(self, spec):
        from repro.api import ML4all

        system = ML4all(cluster_spec=spec, seed=7)
        system.service(cache_size=64)
        assert system.service().cache.maxsize == 64  # None: no warning
        with pytest.warns(UserWarning, match="cache_size"):
            system.service(cache_size=8)
        assert system.service().cache.maxsize == 64


class TestFreezeStepSchedules:
    def test_equal_schedules_equal_fingerprints(self, spec, dataset):
        import dataclasses

        from repro.gd.step_size import InverseSqrtStep

        service = OptimizerService(spec=spec, seed=5)
        t1 = TrainingSpec(task="logreg", tolerance=1e-2,
                          step_size=InverseSqrtStep(2.0), seed=1)
        t2 = dataclasses.replace(t1, step_size=InverseSqrtStep(2.0))
        assert service.fingerprint(dataset, t1, fixed_iterations=50) == \
            service.fingerprint(dataset, t2, fixed_iterations=50)

    def test_different_schedules_different_fingerprints(
        self, spec, dataset
    ):
        import dataclasses

        from repro.gd.step_size import InverseSqrtStep, InverseStep

        service = OptimizerService(spec=spec, seed=5)
        t1 = TrainingSpec(task="logreg", tolerance=1e-2,
                          step_size=InverseSqrtStep(1.0), seed=1)
        fingerprints = {
            service.fingerprint(
                dataset,
                dataclasses.replace(t1, step_size=schedule),
                fixed_iterations=50,
            )
            for schedule in (
                InverseSqrtStep(1.0),
                InverseSqrtStep(8.0),
                InverseStep(1.0),
            )
        }
        assert len(fingerprints) == 3

    def test_callables_freeze_by_name(self):
        from repro.service import freeze

        def schedule(i):
            return 1.0 / i

        frozen = freeze(schedule)
        assert "0x" not in str(frozen)
        assert frozen == freeze(schedule)
