"""Fleet-scale serving: multi-worker drain, lease-steal races, chaos.

The contract under test: N ``repro worker`` processes pointed at one
shared checkpoint store coordinate through leases alone -- every
submitted job completes **exactly once** (machine-checked by the
lease-history audit), and the final weights and delta trajectories are
**bit-identical** to a single-worker baseline no matter which workers
ran which segments or how many of them were SIGKILLed mid-flight.

Layers covered here:

* the lease-steal race (two workers CAS for one expired lease, over
  SQLite *and* the remote ``tcp://`` backend: one winner, one clean
  refusal, zombie writes rejected);
* the in-process :class:`FleetWorker` loop (drain, steal+resume,
  heartbeats, progress/ETA derivation, the audit itself);
* the chaos suite: 3 worker subprocesses drain a 20-job store while a
  chaos controller SIGKILLs and replaces workers mid-drain.
"""

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import ML4all
from repro.runtime import ExecutionTrace
from repro.service import (
    CheckpointStore,
    FleetWorker,
    JobCheckpoint,
    JobLeaseError,
    MemoryBackend,
    RemoteBackend,
    StoreServer,
    audit_lease_history,
    job_progress,
    read_heartbeats,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
ENV = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}

#: The chaos suite's fleet shape (ISSUE: 3 workers, 20 jobs).
CHAOS_JOBS = 20
CHAOS_WORKERS = 3
#: Iterations per job; long enough that SIGKILLs land mid-job.
JOB_ITERATIONS = 40


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    """One deterministic CSV dataset shared by every fleet process.

    Submitting jobs by *file path* is what makes the descriptor
    re-issuable from any worker: the workload fingerprint hashes the
    file's content, so every process resolves the identical workload.
    """
    from repro.data import make_classification

    rng = np.random.default_rng(11)
    X, y, _ = make_classification(240, 6, rng=rng)
    path = tmp_path_factory.mktemp("data") / "fleet.csv"
    np.savetxt(path, np.column_stack([y, X]), delimiter=",")
    return str(path)


def descriptor(dataset_file, job_id, index=0, iterations=JOB_ITERATIONS):
    """A re-issuable job descriptor (the checkpointed request shape).

    Per-job seeds give every job its own trajectory, so the chaos
    suite's bit-identity check would catch cross-job contamination,
    not just wrong iteration counts.
    """
    return {
        "dataset": dataset_file, "task": "logreg", "step": 1.0,
        "epsilon": 1e-12, "max_iter": iterations,
        "fixed_iterations": iterations, "algorithm": "mgd",
        "seed": 3 + index, "checkpoint_every": 5, "job_id": job_id,
    }


def submit_jobs(store, dataset_file, count, iterations=JOB_ITERATIONS):
    ids = [f"fleet-{n:02d}" for n in range(count)]
    for n, job_id in enumerate(ids):
        store.submit(job_id, descriptor(dataset_file, job_id, index=n,
                                        iterations=iterations))
    return ids


def job_outcome(checkpoint):
    """(weights, deltas) of a finished job -- the bit-identity pair."""
    trace = ExecutionTrace.from_dict(checkpoint.trace)
    return list(checkpoint.weights), list(trace.all_deltas)


# ---------------------------------------------------------------------------
# the lease-steal race (satellite: exactly one winner, everywhere)
# ---------------------------------------------------------------------------
class TestLeaseStealRace:
    @pytest.fixture(params=["sqlite", "remote"])
    def fleet_stores(self, request, tmp_path):
        """Two CheckpointStore handles (two 'workers') over one shared
        backend, plus a shared fake clock -- over SQLite and over a
        live ``repro store`` server."""
        clock = {"now": 1000.0}
        tick = lambda: clock["now"]  # noqa: E731
        if request.param == "sqlite":
            path = str(tmp_path / "jobs.db")
            stores = [
                CheckpointStore(path=path, lease_ttl_s=60.0, clock=tick)
                for _ in range(2)
            ]
            yield stores, clock
            for store in stores:
                store.close()
        else:
            with StoreServer(backend=MemoryBackend()) as server:
                stores = [
                    CheckpointStore(
                        backend=RemoteBackend("127.0.0.1", server.port,
                                              namespace="jobs"),
                        lease_ttl_s=60.0, clock=tick,
                    )
                    for _ in range(2)
                ]
                yield stores, clock
                for store in stores:
                    store.close()

    def test_expired_lease_has_exactly_one_stealer(self, fleet_stores):
        (store_a, store_b), clock = fleet_stores
        store_a.acquire("j", "doomed")  # the peer that will "crash"
        clock["now"] += 61.0            # ...its lease expires

        barrier = threading.Barrier(2)
        outcomes = {}

        def contend(name, store):
            barrier.wait()
            try:
                store.acquire("j", name)
                outcomes[name] = "leased"
            except JobLeaseError as exc:
                # The loser's refusal is clean and explanatory, not a
                # crash or a partial lease.
                assert "refusing to double-run" in str(exc)
                outcomes[name] = "blocked"

        threads = [
            threading.Thread(target=contend, args=(name, store))
            for name, store in (("w1", store_a), ("w2", store_b))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(outcomes.values()) == ["blocked", "leased"]

        winner = next(n for n, out in outcomes.items() if out == "leased")
        persisted = store_b.backend.get("j")
        assert persisted["lease"]["owner"] == winner

        # The zombie's late write: "doomed" wakes up believing it still
        # owns the job.  The CAS under save() must reject it.
        with pytest.raises(JobLeaseError, match="lost the lease"):
            store_a.save(
                JobCheckpoint(job_id="j", status="running",
                              fingerprint="f", done_iterations=99),
                owner="doomed",
            )
        assert store_b.backend.get("j")["lease"]["owner"] == winner
        assert store_b.backend.get("j").get("done_iterations", 0) != 99

    def test_unexpired_lease_blocks_both_contenders(self, fleet_stores):
        (store_a, store_b), clock = fleet_stores
        store_a.acquire("j", "alive")
        clock["now"] += 30.0  # half the TTL: the owner is presumed live
        for store, name in ((store_a, "w1"), (store_b, "w2")):
            with pytest.raises(JobLeaseError):
                store.acquire("j", name)


# ---------------------------------------------------------------------------
# the in-process worker loop
# ---------------------------------------------------------------------------
class TestFleetWorker:
    def make_system(self, tmp_path, name="jobs.json"):
        return ML4all(seed=7, checkpoint_path=str(tmp_path / name))

    def test_worker_requires_a_checkpoint_store(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="checkpoint store"):
            FleetWorker(ML4all(seed=7))

    def test_drain_runs_every_queued_job_and_audits_clean(
        self, tmp_path, dataset_file
    ):
        system = self.make_system(tmp_path)
        store = system.service().checkpoints
        ids = submit_jobs(store, dataset_file, 3, iterations=25)
        worker = FleetWorker(system, worker_id="w-a", poll_s=0.05)
        totals = worker.run(drain=True)
        assert totals == {"done": 3, "failed": 0, "steals": 0}
        for job_id in ids:
            checkpoint = store.load(job_id)
            assert checkpoint.status == "done"
            assert checkpoint.done_iterations == 25
            assert audit_lease_history(checkpoint) == []
            # The audit trail names this worker on every lease.
            assert [r["worker"] for r in checkpoint.history] == ["w-a"]
        # The worker's parting heartbeat is in the shared store, and
        # the job listing is not confused by it.
        beats = read_heartbeats(store.backend.load(), now=time.time())
        assert [(b["worker"], b["status"], b["jobs_done"])
                for b in beats] == [("w-a", "stopped", 3)]
        assert set(store.jobs()) == set(ids)

    def test_worker_steals_an_expired_lease_and_resumes(
        self, tmp_path, dataset_file
    ):
        # The doomed peer: runs the job partway (one 15-iteration
        # lease), then "crashes" holding a fresh lease.
        system = self.make_system(tmp_path)
        store = system.service().checkpoints
        submit_jobs(store, dataset_file, 1, iterations=30)
        partial = dict(descriptor(dataset_file, "fleet-00", iterations=30),
                       lease_iterations=15)
        system.service().worker_id = "w-dead"
        outcome = system.train_many([partial], max_workers=1)[0]
        assert outcome.job.preempted
        assert outcome.job.done_iterations == 15
        store.lease_ttl_s = 0.05
        store.acquire("fleet-00", "zombie-owner")  # dies holding this
        time.sleep(0.1)                            # ...and it expires

        stealer = FleetWorker(system, worker_id="w-thief", poll_s=0.05)
        totals = stealer.run(drain=True)
        assert totals["done"] == 1
        assert totals["steals"] == 1
        checkpoint = store.load("fleet-00")
        assert checkpoint.status == "done"
        assert checkpoint.done_iterations == 30
        assert audit_lease_history(checkpoint) == []
        # Two leases partitioned the range 0..30 exactly; the steal's
        # record names the thief.
        spans = [(r["start_iteration"], r["end_iteration"],
                  r["worker"]) for r in checkpoint.history]
        assert spans == [(0, 15, "w-dead"), (15, 30, "w-thief")]

    def test_progress_and_eta_derive_from_the_checkpoint(
        self, tmp_path, dataset_file
    ):
        system = self.make_system(tmp_path)
        store = system.service().checkpoints
        submit_jobs(store, dataset_file, 1, iterations=30)

        queued = job_progress(store.load("fleet-00"))
        assert queued["status"] == "queued"
        assert queued["eta_sim_seconds"] is None  # no trace yet

        partial = dict(descriptor(dataset_file, "fleet-00", iterations=30),
                       lease_iterations=10)
        system.service().worker_id = "w-a"
        system.train_many([partial], max_workers=1)
        midway = job_progress(store.load("fleet-00"), now=time.time())
        assert midway["status"] == "preempted"
        assert midway["done_iterations"] == 10
        assert midway["remaining_iterations"] == 20
        assert midway["predicted_iterations"] == 30
        assert midway["per_iteration_s"] > 0.0
        assert midway["eta_sim_seconds"] == pytest.approx(
            20 * midway["per_iteration_s"]
        )
        assert midway["worker"] == "w-a"
        assert not midway["leased"]  # the lease was released cleanly

        FleetWorker(system, worker_id="w-b", poll_s=0.05).run(drain=True)
        finished = job_progress(store.load("fleet-00"))
        assert finished["status"] == "done"
        assert finished["remaining_iterations"] == 0
        assert finished["eta_sim_seconds"] == 0.0
        assert finished["leases"] == 2

    def test_audit_flags_gaps_overlaps_and_shortfalls(self):
        def checkpoint(history, done, status="done"):
            return JobCheckpoint(
                job_id="j", status=status, fingerprint="f",
                done_iterations=done, history=history,
            )

        span = lambda a, b, status="preempted": {  # noqa: E731
            "owner": "o", "worker": "w",
            "start_iteration": a, "end_iteration": b, "status": status,
        }
        clean = [span(0, 10), span(10, 30, "done")]
        assert audit_lease_history(checkpoint(clean, 30)) == []
        gap = audit_lease_history(
            checkpoint([span(0, 10), span(12, 30, "done")], 30)
        )
        assert any("gap" in p for p in gap)
        overlap = audit_lease_history(
            checkpoint([span(0, 10), span(5, 30, "done")], 30)
        )
        assert any("overlap" in p for p in overlap)
        short = audit_lease_history(
            checkpoint([span(0, 10, "done")], 30)
        )
        assert any("banked" in p for p in short)
        silent = audit_lease_history(checkpoint([], 30))
        assert any("no lease history" in p for p in silent)
        assert audit_lease_history(checkpoint([], 0, status="queued")) == []


# ---------------------------------------------------------------------------
# the chaos suite
# ---------------------------------------------------------------------------
def spawn_worker(checkpoint_ref, worker_id, log_path):
    log = open(log_path, "a")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--checkpoint", checkpoint_ref, "--drain",
         "--worker-id", worker_id, "--poll", "0.1",
         "--lease-ttl", "2", "--log-level", "warning"],
        stdout=log, stderr=subprocess.STDOUT, text=True, env=ENV,
    )


@pytest.fixture(scope="module")
def single_worker_baseline(tmp_path_factory, dataset_file):
    """The ground truth: one worker process drains all 20 jobs alone."""
    root = tmp_path_factory.mktemp("baseline")
    path = str(root / "jobs.db")
    store = CheckpointStore(path=path)
    ids = submit_jobs(store, dataset_file, CHAOS_JOBS)
    store.close()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "worker", "--checkpoint", path,
         "--drain", "--worker-id", "baseline", "--poll", "0.1",
         "--log-level", "warning"],
        capture_output=True, text=True, timeout=600, env=ENV,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    store = CheckpointStore(path=path)
    results = {}
    for job_id in ids:
        checkpoint = store.load(job_id)
        assert checkpoint.status == "done", (job_id, checkpoint.status)
        results[job_id] = job_outcome(checkpoint)
    store.close()
    return results


class TestChaosFleet:
    @pytest.mark.parametrize("kind", ["sqlite", "tcp"])
    def test_sigkilled_fleet_drains_exactly_once_bit_identically(
        self, tmp_path, dataset_file, single_worker_baseline, kind
    ):
        """3 workers drain 20 jobs; the chaos controller SIGKILLs two
        of them mid-drain (replacing each), so in-flight leases die and
        must be stolen.  Every job completes exactly once (lease-history
        audit) and every trajectory is bit-identical to the
        single-worker baseline."""
        server = None
        fleet = {}
        if kind == "sqlite":
            checkpoint_ref = str(tmp_path / "fleet.db")
        else:
            server = StoreServer(
                backend=MemoryBackend(), host="127.0.0.1"
            )
            checkpoint_ref = \
                f"tcp://127.0.0.1:{server.start()}/fleet"
        try:
            store = CheckpointStore(path=checkpoint_ref)
            ids = submit_jobs(store, dataset_file, CHAOS_JOBS)

            log = tmp_path / "workers.log"
            fleet = {
                n: spawn_worker(checkpoint_ref, f"w{n}", log)
                for n in range(CHAOS_WORKERS)
            }
            kill_thresholds = [3, 9]  # done-counts that trigger chaos
            killed = []
            deadline = time.time() + 480
            done = 0
            while time.time() < deadline:
                jobs = store.jobs()
                done = sum(1 for job_id in ids
                           if job_id in jobs
                           and jobs[job_id].status == "done")
                if done == CHAOS_JOBS:
                    break
                if kill_thresholds and done >= kill_thresholds[0]:
                    kill_thresholds.pop(0)
                    victim = len(killed) % CHAOS_WORKERS
                    proc = fleet[victim]
                    if proc.poll() is None:
                        proc.send_signal(signal.SIGKILL)
                        proc.wait()
                    killed.append(victim)
                    # The replacement keeps the fleet at full strength.
                    fleet[victim] = spawn_worker(
                        checkpoint_ref, f"w{victim}r", log
                    )
                time.sleep(0.25)

            # Drain-mode workers exit on their own once the store is
            # empty of work.
            for proc in fleet.values():
                assert proc.wait(timeout=120) == 0, log.read_text()
            assert done == CHAOS_JOBS, (
                f"only {done}/{CHAOS_JOBS} jobs finished before the "
                f"deadline\n{log.read_text()}"
            )
            assert len(killed) == 2  # the chaos actually happened

            final = CheckpointStore(path=checkpoint_ref)
            jobs = final.jobs()
            for job_id in ids:
                checkpoint = jobs[job_id]
                assert checkpoint.status == "done"
                assert checkpoint.done_iterations == JOB_ITERATIONS
                # Exactly once: the lease records partition 0..40 with
                # no gap (lost work) and no overlap (double-run).
                assert audit_lease_history(checkpoint) == [], job_id
                # Bit-identical to the lone-worker ground truth.
                weights, deltas = job_outcome(checkpoint)
                base_weights, base_deltas = single_worker_baseline[job_id]
                assert weights == base_weights, job_id
                assert deltas == base_deltas, job_id

            # The fleet's heartbeats ended up in the shared store (the
            # SIGKILLed workers' last beats too -- they could not say
            # goodbye, which is the point).
            beats = {
                beat["worker"]: beat
                for beat in read_heartbeats(final.backend.load())
            }
            replacements = {f"w{victim}r" for victim in killed}
            assert set(beats) == \
                {f"w{n}" for n in range(CHAOS_WORKERS)} | replacements
            survivors = {worker_id for worker_id, beat in beats.items()
                         if beat["status"] == "stopped"}
            # Clean exits said goodbye; the SIGKILLed two could not.
            assert replacements <= survivors
            assert len(survivors) == CHAOS_WORKERS
            final.close()
            store.close()
        finally:
            for proc in fleet.values():
                if proc.poll() is None:
                    proc.kill()
            if server is not None:
                server.stop()
