"""Unit tests for step-size schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.gd.step_size import (
    ConstantStep,
    InverseSqrtStep,
    InverseSquaredStep,
    InverseStep,
    make_step_size,
)


class TestSchedules:
    def test_constant(self):
        step = ConstantStep(0.5)
        assert step(1) == step(100) == 0.5

    def test_inverse_sqrt_matches_mllib_formula(self):
        step = InverseSqrtStep(beta=2.0)
        assert step(1) == pytest.approx(2.0)
        assert step(4) == pytest.approx(1.0)
        assert step(100) == pytest.approx(0.2)

    def test_inverse(self):
        step = InverseStep(beta=1.0)
        assert step(10) == pytest.approx(0.1)

    def test_inverse_squared(self):
        step = InverseSquaredStep(beta=1.0)
        assert step(10) == pytest.approx(0.01)

    @pytest.mark.parametrize("cls", [
        ConstantStep, InverseSqrtStep, InverseStep, InverseSquaredStep,
    ])
    def test_nonpositive_beta_rejected(self, cls):
        with pytest.raises(PlanError):
            cls(0.0)
        with pytest.raises(PlanError):
            cls(-1.0)

    @given(i=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_schedules_ordered(self, i):
        """For beta=1: constant >= 1/sqrt(i) >= 1/i >= 1/i^2."""
        c = ConstantStep(1.0)(i)
        s = InverseSqrtStep(1.0)(i)
        inv = InverseStep(1.0)(i)
        sq = InverseSquaredStep(1.0)(i)
        assert c >= s >= inv >= sq > 0


class TestFactory:
    def test_number_means_mllib_schedule(self):
        step = make_step_size(2.0)
        assert isinstance(step, InverseSqrtStep)
        assert step.beta == 2.0

    def test_passthrough(self):
        step = ConstantStep(1.0)
        assert make_step_size(step) is step

    def test_names(self):
        assert isinstance(make_step_size("constant"), ConstantStep)
        assert isinstance(make_step_size("1/i"), InverseStep)
        assert isinstance(make_step_size("1/i^2"), InverseSquaredStep)
        assert isinstance(make_step_size("inv_sqrt"), InverseSqrtStep)

    def test_name_with_beta(self):
        step = make_step_size("1/i:0.5")
        assert isinstance(step, InverseStep)
        assert step(1) == pytest.approx(0.5)

    def test_unknown_name(self):
        with pytest.raises(PlanError):
            make_step_size("cosine")

    def test_unbuildable_type(self):
        with pytest.raises(PlanError):
            make_step_size([1, 2])
