"""Unit tests for the declarative language: lexer, parser, AST."""

import pytest

from repro.errors import QueryError
from repro.lang import ast
from repro.lang.lexer import DURATION, KEYWORD, NUMBER, WORD, parse_duration, tokenize
from repro.lang.parser import parse


class TestLexer:
    def test_simple_query_tokens(self):
        tokens = tokenize("run classification on data.txt;")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [KEYWORD, WORD, KEYWORD, WORD, "SYMBOL"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("RUN Classification ON x;")
        assert tokens[0].is_keyword("run")
        assert tokens[2].is_keyword("on")

    def test_durations(self):
        tokens = tokenize("1h30m 45m 90s 2h")
        assert all(t.kind == DURATION for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("0.01 1000 1e-4 .5")
        assert all(t.kind == NUMBER for t in tokens[:-1])

    def test_paths(self):
        tokens = tokenize("/data/train.txt ../rel/file.csv data_1.txt")
        assert all(t.kind == WORD for t in tokens[:-1])

    def test_positions_tracked(self):
        tokens = tokenize("run\n  classification")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(QueryError) as err:
            tokenize("run @ x")
        assert "line 1" in str(err.value)

    def test_parse_duration(self):
        assert parse_duration("1h30m") == 5400
        assert parse_duration("45m") == 2700
        assert parse_duration("90s") == 90
        assert parse_duration("2h") == 7200
        assert parse_duration("1h30m15s") == 5415

    def test_parse_duration_invalid(self):
        with pytest.raises(QueryError):
            parse_duration("soon")


class TestParserRun:
    def test_minimal_query_q1(self):
        (stmt,) = parse("run classification on training_data.txt;")
        assert isinstance(stmt, ast.RunStatement)
        assert stmt.task == "classification"
        assert stmt.sources[0].path == "training_data.txt"
        assert stmt.having == ast.Constraints()

    def test_assignment(self):
        (stmt,) = parse("Q1 = run classification on data.txt;")
        assert stmt.result_name == "Q1"

    def test_having_clause_q2(self):
        (stmt,) = parse(
            "run classification on data.txt "
            "having time 1h30m, epsilon 0.01, max iter 1000;"
        )
        assert stmt.having.time_s == 5400
        assert stmt.having.epsilon == 0.01
        assert stmt.having.max_iter == 1000

    def test_column_specs_q2(self):
        (stmt,) = parse(
            "run classification on input_data.txt:2, input_data.txt:4-20;"
        )
        label, features = stmt.sources
        assert label.columns == ast.ColumnSpec(2)
        assert features.columns == ast.ColumnSpec(4, 20)

    def test_using_clause_q3(self):
        (stmt,) = parse(
            "run classification on input_data.txt using algorithm SGD, "
            "convergence cnvg(), step 1, sampler my_sampler();"
        )
        assert stmt.using.algorithm == "sgd"
        assert stmt.using.convergence == "cnvg"
        assert stmt.using.step == 1
        assert stmt.using.sampler == "my_sampler"

    def test_using_batch(self):
        (stmt,) = parse("run svm on x using batch 5000;")
        assert stmt.using.batch == 5000

    def test_gradient_function_task(self):
        (stmt,) = parse("run hinge() on data.txt;")
        assert stmt.task == "hinge"

    def test_libsvm_parser_wrapper(self):
        (stmt,) = parse("run classification on libsvm(training.txt);")
        assert stmt.sources[0].parser == "libsvm"
        assert stmt.sources[0].path == "training.txt"

    def test_having_and_using_together(self):
        (stmt,) = parse(
            "run svm on d having epsilon 0.1 using algorithm bgd;"
        )
        assert stmt.having.epsilon == 0.1
        assert stmt.using.algorithm == "bgd"

    def test_time_in_plain_seconds(self):
        (stmt,) = parse("run svm on d having time 90;")
        assert stmt.having.time_s == 90

    def test_multiple_statements(self):
        stmts = parse(
            "Q1 = run classification on a.txt; persist Q1 on model.txt;"
        )
        assert len(stmts) == 2
        assert isinstance(stmts[1], ast.PersistStatement)


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(QueryError):
            parse("run classification on data.txt")

    def test_missing_dataset(self):
        with pytest.raises(QueryError):
            parse("run classification on ;")

    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse("   ")

    def test_bad_having_item(self):
        with pytest.raises(QueryError):
            parse("run svm on d having accuracy 0.9;")

    def test_bad_using_item(self):
        with pytest.raises(QueryError):
            parse("run svm on d using optimizer adam;")

    def test_negative_epsilon(self):
        with pytest.raises(QueryError):
            parse("run svm on d having epsilon 0;")

    def test_zero_max_iter(self):
        with pytest.raises(QueryError):
            parse("run svm on d having max iter 0;")

    def test_backwards_column_range(self):
        with pytest.raises(QueryError):
            parse("run svm on d:20-4;")

    def test_error_mentions_position(self):
        with pytest.raises(QueryError) as err:
            parse("run svm on d having max banana 3;")
        assert "line 1" in str(err.value)

    def test_assignment_to_persist_rejected(self):
        with pytest.raises(QueryError):
            parse("X = persist Q1 on f.txt;")


class TestPersistPredict:
    def test_persist(self):
        (stmt,) = parse("persist Q1 on my_model.txt;")
        assert stmt.name == "Q1"
        assert stmt.path == "my_model.txt"

    def test_predict(self):
        (stmt,) = parse("result = predict on test_data with my_model.txt;")
        assert isinstance(stmt, ast.PredictStatement)
        assert stmt.result_name == "result"
        assert stmt.source.path == "test_data"
        assert stmt.model == "my_model.txt"

    def test_predict_without_assignment(self):
        (stmt,) = parse("predict on test with m;")
        assert stmt.result_name is None
