"""Tests for the observability subsystem: tracing, structured logs,
histogram metrics and the Prometheus exposition (PR 7).

Covers the contextvar trace plumbing end to end -- one trace_id minted
at the front-end showing up on spans from every layer (admission,
speculation, plan choice, training segments, checkpoint writes, lease
ops) -- plus the JSON-lines persistence round-trip through ``repro
trace``, the slow-request log, the logging formatters, and the
MetricsRegistry's concurrency and rendering guarantees.
"""

import io
import json
import logging
import socket
import threading

import pytest

import repro.__main__ as cli
from repro.api import ML4all
from repro.errors import ReproError
from repro.obs import (
    JsonFormatter,
    TraceRecorder,
    assemble_tree,
    configure_logging,
    current_context,
    emit_span,
    get_logger,
    render_tree,
    span,
)
from repro.obs.recorder import load_trace, valid_trace_id
from repro.service.frontend import (
    Dispatcher,
    SocketFrontend,
    parse_wire_line,
)
from repro.service.metrics import MetricsRegistry

FAST_LINE = "adult epsilon=0.05 fixed_iterations=40"

TRAIN_REQUEST = {
    "verb": "train", "dataset": "adult", "epsilon": 0.001,
    "max_iter": 150, "algorithm": "mgd", "job_id": "traced-job",
    "checkpoint_every": 25,
}


def span_names(spans):
    return {record["name"] for record in spans}


# ----------------------------------------------------------------------
class TestSpans:
    def test_span_is_noop_without_active_trace(self):
        assert current_context() is None
        with span("anything", key="value") as sp:
            sp.set("more", 1)  # must not raise
        assert current_context() is None

    def test_emit_span_returns_none_without_active_trace(self):
        assert emit_span("queue_wait", 0.5) is None

    def test_trace_records_nested_spans_with_parent_links(self):
        recorder = TraceRecorder()
        with recorder.trace("request", verb="optimize") as root:
            with span("outer") as outer:
                with span("inner"):
                    pass
        spans = recorder.spans(root.trace_id)
        by_name = {record["name"]: record for record in spans}
        assert by_name["request"]["parent_id"] is None
        assert by_name["outer"]["parent_id"] == by_name["request"]["span_id"]
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert {record["trace_id"] for record in spans} == {root.trace_id}
        assert all(record["duration_s"] >= 0.0 for record in spans)

    def test_exception_marks_span_status_error_and_propagates(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with recorder.trace("request") as root:
                with span("failing"):
                    raise ValueError("boom")
        by_name = {s["name"]: s for s in recorder.spans(root.trace_id)}
        assert by_name["failing"]["status"] == "error"
        assert "ValueError: boom" in by_name["failing"]["attributes"]["error"]
        # the root also raised through, so it is an error too
        assert by_name["request"]["status"] == "error"

    def test_emit_span_attaches_premeasured_duration(self):
        recorder = TraceRecorder()
        with recorder.trace("request") as root:
            emitted = emit_span("admission", 0.125, tenant="t1")
        assert emitted.duration_s == 0.125
        by_name = {s["name"]: s for s in recorder.spans(root.trace_id)}
        assert by_name["admission"]["parent_id"] == \
            by_name["request"]["span_id"]

    def test_adopted_trace_id_and_validation(self):
        recorder = TraceRecorder()
        with recorder.trace("request", trace_id="client-chosen.1") as root:
            pass
        assert root.trace_id == "client-chosen.1"
        # invalid ids are replaced, not trusted
        with recorder.trace("request", trace_id="../../etc/passwd") as root:
            pass
        assert root.trace_id != "../../etc/passwd"
        assert valid_trace_id(root.trace_id)

    def test_spans_cross_thread_pools_via_copy_context(self):
        import contextvars
        from concurrent.futures import ThreadPoolExecutor

        recorder = TraceRecorder()
        with recorder.trace("request") as root:
            with ThreadPoolExecutor(max_workers=2) as pool:
                ctx = contextvars.copy_context()
                future = pool.submit(ctx.run, self._worker_span)
                future.result()
        assert "worker" in span_names(recorder.spans(root.trace_id))

    @staticmethod
    def _worker_span():
        with span("worker"):
            pass


class TestRecorder:
    def test_memory_ring_evicts_oldest_trace(self):
        recorder = TraceRecorder(max_traces=2)
        ids = []
        for _ in range(3):
            with recorder.trace("request") as root:
                ids.append(root.trace_id)
        assert recorder.spans(ids[0]) is None
        assert recorder.spans(ids[1]) is not None
        assert recorder.spans(ids[2]) is not None

    def test_per_trace_span_cap_bounds_memory(self):
        recorder = TraceRecorder(max_spans_per_trace=5)
        with recorder.trace("request") as root:
            for _ in range(20):
                with span("loop"):
                    pass
        assert len(recorder.spans(root.trace_id)) == 5

    def test_disk_persistence_and_reload(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        recorder = TraceRecorder(trace_dir=trace_dir, max_traces=1)
        with recorder.trace("request") as first:
            with span("child"):
                pass
        with recorder.trace("request"):
            pass  # evicts the first trace from memory
        # memory is gone, disk still answers
        spans = recorder.spans(first.trace_id)
        assert span_names(spans) == {"request", "child"}
        direct = load_trace(
            str(tmp_path / "traces" / f"{first.trace_id}.jsonl")
        )
        assert direct == spans

    def test_slow_request_log_and_counter(self, tmp_path):
        metrics = MetricsRegistry()
        recorder = TraceRecorder(
            trace_dir=str(tmp_path), metrics=metrics, slow_threshold_s=0.0
        )
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        try:
            with recorder.trace("request") as root:
                pass
        finally:
            configure_logging(level="info")  # restore live-stderr handler
        assert metrics.value("obs.slow_requests") == 1
        logged = stream.getvalue()
        assert "slow request" in logged and root.trace_id in logged
        slow = load_trace(str(tmp_path / "slow_requests.jsonl"))
        assert slow[0]["trace_id"] == root.trace_id

    def test_span_durations_feed_metrics_histograms(self):
        metrics = MetricsRegistry()
        recorder = TraceRecorder(metrics=metrics)
        with recorder.trace("request"):
            with span("fingerprint"):
                pass
        assert metrics.histogram_stats("span.request")["count"] == 1
        assert metrics.histogram_stats("span.fingerprint")["count"] == 1


class TestTreeAssembly:
    def test_assemble_and_render(self):
        recorder = TraceRecorder()
        with recorder.trace("request") as root:
            with span("outer", algorithm="mgd"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        spans = recorder.spans(root.trace_id)
        [tree] = assemble_tree(spans)
        assert tree["name"] == "request"
        assert [c["name"] for c in tree["children"]] == ["outer", "sibling"]
        assert tree["children"][0]["children"][0]["name"] == "inner"
        lines = render_tree(spans)
        assert lines[0].startswith("request ")
        assert lines[1].startswith("  outer ")
        assert "algorithm=mgd" in lines[1]
        assert lines[2].startswith("    inner ")

    def test_orphan_spans_surface_as_roots(self):
        spans = [
            {"name": "lost", "trace_id": "t", "span_id": "b",
             "parent_id": "missing", "start_s": 1.0, "duration_s": 0.1,
             "status": "ok", "attributes": {}},
        ]
        [root] = assemble_tree(spans)
        assert root["name"] == "lost"
        assert render_tree(spans)


# ----------------------------------------------------------------------
class TestLogging:
    def test_json_formatter_merges_extras_and_trace_ids(self):
        recorder = TraceRecorder()
        formatter = JsonFormatter()
        logger = logging.Logger("repro.test")
        with recorder.trace("request") as root:
            record = logger.makeRecord(
                "repro.test", logging.WARNING, "f", 1, "oh %s", ("no",),
                None, extra={"kind": "bad_request"},
            )
            payload = json.loads(formatter.format(record))
        assert payload["message"] == "oh no"
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test"
        assert payload["kind"] == "bad_request"
        assert payload["trace_id"] == root.trace_id
        assert payload["ts"].endswith("Z")

    def test_configure_logging_is_idempotent(self):
        first = configure_logging(level="info")
        second = configure_logging(level="debug")
        try:
            assert first is second
            handlers = [h for h in second.handlers
                        if getattr(h, "_repro_obs", False)]
            assert len(handlers) == 1
            assert second.level == logging.DEBUG
        finally:
            configure_logging(level="info")

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_get_logger_roots_under_repro(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.slow").name == "repro.slow"
        assert get_logger().name == "repro"

    def test_text_formatter_appends_extras(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        try:
            get_logger("test").warning("went wrong", extra={"kind": "bad"})
        finally:
            configure_logging(level="info")
        line = stream.getvalue()
        assert "WARNING" in line and "repro.test" in line
        assert "went wrong" in line and "kind=bad" in line


# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_trace_verb_text_form(self):
        wire = parse_wire_line("trace abc123")
        assert wire.verb == "trace"
        assert wire.trace_id == "abc123"
        assert wire.request is None

    def test_trace_verb_json_form(self):
        wire = parse_wire_line(
            '{"verb": "trace", "trace_id": "abc123", "id": 7}'
        )
        assert wire.verb == "trace" and wire.trace_id == "abc123"
        assert wire.id == 7

    def test_trace_verb_requires_trace_id(self):
        with pytest.raises(ReproError, match="needs a trace_id"):
            parse_wire_line("trace")
        with pytest.raises(ReproError, match="needs a trace_id"):
            parse_wire_line('{"verb": "trace"}')

    def test_invalid_trace_id_is_a_bad_request(self):
        with pytest.raises(ReproError, match="invalid trace_id"):
            parse_wire_line('{"verb": "trace", "trace_id": "../escape"}')

    def test_request_lines_can_carry_a_trace_id(self):
        wire = parse_wire_line(f"{FAST_LINE} trace_id=my-trace.1")
        assert wire.trace_id == "my-trace.1"
        assert wire.request["dataset"] == "adult"
        assert "trace_id" not in wire.request


# ----------------------------------------------------------------------
class TestDispatcherTracing:
    def test_optimize_response_carries_trace_id(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        response = dispatcher.handle_line(FAST_LINE)
        assert response["ok"]
        trace_id = response["trace_id"]
        trace = dispatcher.handle_line(f"trace {trace_id}")
        assert trace["ok"]
        names = span_names(trace["spans"])
        assert {"request", "fingerprint", "cache_lookup",
                "plan_choice"} <= names
        assert trace["lines"][0].startswith("request ")

    def test_client_supplied_trace_id_is_adopted(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        response = dispatcher.handle_line(
            f"{FAST_LINE} trace_id=chosen-by-client"
        )
        assert response["trace_id"] == "chosen-by-client"
        assert dispatcher.handle_line("trace chosen-by-client")["ok"]

    def test_unknown_trace_is_not_found(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        response = dispatcher.handle_line("trace deadbeef00000000")
        assert not response["ok"]
        assert response["error"] == "not_found"

    def test_train_job_trace_spans_every_layer(self, tmp_path):
        system = ML4all(seed=7,
                        checkpoint_path=str(tmp_path / "jobs.json"))
        dispatcher = Dispatcher(system)
        response = dispatcher.handle_line(json.dumps(TRAIN_REQUEST))
        assert response["ok"], response
        trace = dispatcher.handle_line(f"trace {response['trace_id']}")
        spans = trace["spans"]
        names = span_names(spans)
        # one trace_id across admission-to-checkpoint, per ISSUE 7
        assert {"request", "speculation", "plan_choice", "plan_segment",
                "checkpoint_write", "lease_acquire",
                "lease_release"} <= names
        assert {s["trace_id"] for s in spans} == {response["trace_id"]}
        # every AdaptiveTrainer segment is in the tree
        segments = [s for s in spans if s["name"] == "plan_segment"]
        assert all(
            s["attributes"]["algorithm"] == "mgd" for s in segments
        )
        # the plan-choice explain record ranks every candidate
        [choice] = [s for s in spans if s["name"] == "plan_choice"]
        ranked = choice["attributes"]["candidates"]
        assert len(ranked) >= 2
        totals = [c["total_s"] for c in ranked]
        assert totals == sorted(totals)
        assert choice["attributes"]["chosen"] == ranked[0]["plan"]

    def test_failed_request_is_an_error_root_span(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        response = dispatcher.handle_line("no_such_dataset epsilon=0.05")
        assert not response["ok"]
        trace = dispatcher.handle_line(f"trace {response['trace_id']}")
        [root] = [s for s in trace["spans"] if s["parent_id"] is None]
        assert root["attributes"]["ok"] is False
        assert root["attributes"]["error"] == "request_failed"

    def test_metrics_verb_includes_prometheus_text(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        dispatcher.handle_line(FAST_LINE)
        response = dispatcher.handle_line("metrics")
        assert "histograms" in response["metrics"]
        assert "repro_frontend_requests_total" in response["prometheus"]
        assert "span.request" in response["metrics"]["histograms"]


class TestSocketTracing:
    def test_admission_span_and_trace_verb_over_socket(self):
        dispatcher = Dispatcher(ML4all(seed=7))
        with SocketFrontend(dispatcher, port=0, max_workers=2) as frontend:
            sock = socket.create_connection(
                ("127.0.0.1", frontend.port), timeout=30
            )
            handle = sock.makefile("rw", encoding="utf-8", newline="\n")
            try:
                handle.write(FAST_LINE + "\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"]
                handle.write(f"trace {response['trace_id']}\n")
                handle.flush()
                trace = json.loads(handle.readline())
            finally:
                sock.close()
        assert trace["ok"]
        names = span_names(trace["spans"])
        assert "admission" in names and "plan_choice" in names
        assert {s["trace_id"] for s in trace["spans"]} == \
            {response["trace_id"]}


# ----------------------------------------------------------------------
class TestTraceCli:
    def test_repro_trace_renders_a_stored_trace(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        system = ML4all(seed=7)
        dispatcher = Dispatcher(
            system, tracer=TraceRecorder(trace_dir=trace_dir,
                                         metrics=system.metrics),
        )
        response = dispatcher.handle_line(FAST_LINE)
        assert cli.main(
            ["trace", response["trace_id"], "--trace-dir", trace_dir]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("request ")
        assert "plan_choice" in out and "spans" in out

    def test_repro_trace_json_mode_and_file_path(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        system = ML4all(seed=7)
        dispatcher = Dispatcher(
            system, tracer=TraceRecorder(trace_dir=str(trace_dir),
                                         metrics=system.metrics),
        )
        response = dispatcher.handle_line(FAST_LINE)
        path = trace_dir / f"{response['trace_id']}.jsonl"
        assert cli.main(["trace", str(path), "--json"]) == 0
        [tree] = json.loads(capsys.readouterr().out)
        assert tree["name"] == "request"
        assert tree["children"]

    def test_repro_trace_missing_trace_fails(self, tmp_path, capsys):
        assert cli.main(
            ["trace", "deadbeef00000000", "--trace-dir", str(tmp_path)]
        ) == 1
        assert "no trace at" in capsys.readouterr().err

    def test_serve_logs_structured_error_records(self, capsys,
                                                 monkeypatch):
        lines = io.StringIO("bogus line-with=junk\n")
        monkeypatch.setattr("sys.stdin", lines)
        try:
            cli.main(["serve"])
        finally:
            configure_logging(level="info")
        captured = capsys.readouterr()
        envelope = json.loads(captured.out.splitlines()[0])
        assert envelope["error"] == "bad_request"
        # the stderr line is a log record now, not a bare print
        assert "WARNING" in captured.err
        assert "repro.serve" in captured.err
        assert "kind=bad_request" in captured.err

    def test_serve_log_json_emits_json_records(self, capsys, monkeypatch):
        lines = io.StringIO("bogus line-with=junk\n")
        monkeypatch.setattr("sys.stdin", lines)
        try:
            cli.main(["serve", "--log-json"])
        finally:
            configure_logging(level="info")
        err_lines = [
            line for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        record = json.loads(err_lines[0])
        assert record["level"] == "WARNING"
        assert record["logger"] == "repro.serve"
        assert record["kind"] == "bad_request"


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_histogram_stats_buckets_are_cumulative(self):
        metrics = MetricsRegistry()
        for value in (0.0005, 0.003, 0.003, 2.0):
            metrics.histogram("span.request", value)
        stats = metrics.histogram_stats("span.request")
        assert stats["count"] == 4
        assert stats["sum_s"] == pytest.approx(2.0065)
        assert stats["buckets"]["0.001"] == 1
        assert stats["buckets"]["0.005"] == 3
        assert stats["buckets"]["10"] == 4

    def test_prometheus_rendering_covers_every_instrument(self):
        metrics = MetricsRegistry()
        metrics.inc("frontend.requests", 3)
        metrics.gauge("frontend.queue_depth", 2)
        for value in (0.01, 0.02, 0.03):
            metrics.observe("frontend.latency_s", value)
        metrics.histogram("span.request", 0.004)
        text = metrics.render_prometheus()
        assert "# TYPE repro_frontend_requests_total counter" in text
        assert "repro_frontend_requests_total 3" in text
        assert "# TYPE repro_frontend_queue_depth gauge" in text
        assert 'repro_frontend_latency_s{quantile="0.5"}' in text
        assert "repro_frontend_latency_s_count 3" in text
        assert 'repro_span_request_seconds_bucket{le="0.005"} 1' in text
        assert 'repro_span_request_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_span_request_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_names_are_sanitised(self):
        metrics = MetricsRegistry()
        metrics.inc("service.cache-hits")
        text = metrics.render_prometheus()
        assert "repro_service_cache_hits_total 1" in text

    def test_snapshot_under_concurrent_writers_hammer(self):
        """Satellite 3: N writer threads inc/observe/histogram while the
        main thread snapshots; no exceptions, counters monotone."""
        metrics = MetricsRegistry()
        stop = threading.Event()
        errors = []
        per_thread = 3000
        threads = 6

        def writer(index):
            try:
                for i in range(per_thread):
                    metrics.inc("hammer.counter")
                    metrics.observe("hammer.timer", i * 1e-6)
                    metrics.histogram("hammer.hist", i * 1e-6)
                    metrics.gauge("hammer.gauge", i)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        workers = [
            threading.Thread(target=writer, args=(n,))
            for n in range(threads)
        ]
        for worker in workers:
            worker.start()
        last = 0
        snapshots = 0
        while any(w.is_alive() for w in workers):
            snapshot = metrics.snapshot()
            metrics.render_prometheus()
            current = snapshot["counters"].get("hammer.counter", 0)
            assert current >= last, "counter went backwards"
            last = current
            snapshots += 1
        for worker in workers:
            worker.join()
        assert not errors
        assert snapshots > 0
        final = metrics.snapshot()
        assert final["counters"]["hammer.counter"] == threads * per_thread
        assert final["histograms"]["hammer.hist"]["count"] == \
            threads * per_thread
