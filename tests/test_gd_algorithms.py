"""Unit tests for the GD algorithm zoo (pure math)."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.gd import (
    ALGORITHMS,
    CORE_ALGORITHMS,
    backtracking_bgd,
    bgd,
    mgd,
    run_loop,
    sgd,
    svrg,
)
from repro.gd import registry as gd_registry
from repro.gd.base import full_batch_selector, make_minibatch_selector
from repro.gd.gradients import (
    LinearRegressionGradient,
    LogisticGradient,
    task_gradient,
)


def quadratic_problem(n=200, d=5, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w_star = rng.normal(size=d)
    y = X @ w_star + noise * rng.normal(size=n)
    return X, y, w_star


class TestRunLoop:
    def test_bgd_converges_on_quadratic(self):
        X, y, w_star = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(),
                     step_size="constant:0.1", tolerance=1e-6,
                     max_iter=5000)
        assert result.converged
        np.testing.assert_allclose(result.weights, w_star, atol=1e-3)

    def test_iterations_recorded(self):
        X, y, _ = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(),
                     step_size="constant:0.1", tolerance=1e-6,
                     max_iter=5000)
        assert len(result.deltas) == result.iterations

    def test_deltas_decrease_for_bgd_constant_step(self):
        X, y, _ = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(),
                     step_size="constant:0.05", tolerance=0,
                     max_iter=100)
        # Deltas should trend down (compare first and last fifths).
        assert result.deltas[-20:].mean() < result.deltas[:20].mean()

    def test_max_iter_respected(self):
        X, y, _ = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(), tolerance=0,
                     max_iter=17)
        assert result.iterations == 17
        assert not result.converged

    def test_w0_used(self):
        X, y, w_star = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(), w0=w_star,
                     tolerance=1e-9, max_iter=10)
        assert result.converged
        assert result.iterations == 1

    def test_bad_w0_shape(self):
        X, y, _ = quadratic_problem(d=5)
        with pytest.raises(PlanError):
            bgd(X, y, LinearRegressionGradient(), w0=np.zeros(4))

    def test_empty_dataset(self):
        with pytest.raises(PlanError):
            bgd(np.zeros((0, 3)), np.zeros(0), LinearRegressionGradient())

    def test_record_loss(self):
        X, y, _ = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(),
                     step_size="constant:0.1", tolerance=0, max_iter=30,
                     record_loss=True)
        assert result.losses is not None
        assert len(result.losses) == 30
        assert result.losses[-1] < result.losses[0]

    def test_callback_stops_early(self):
        X, y, _ = quadratic_problem()
        result = bgd(X, y, LinearRegressionGradient(), tolerance=0,
                     max_iter=100,
                     iteration_callback=lambda i, w, d: i >= 5)
        assert result.iterations == 5

    def test_time_budget_stops(self):
        X, y, _ = quadratic_problem(n=2000)
        result = bgd(X, y, LinearRegressionGradient(), tolerance=0,
                     max_iter=10_000_000, time_budget_s=0.05)
        assert result.iterations < 10_000_000

    def test_sgd_mgd_reproducible_with_seed(self):
        X, y, _ = quadratic_problem()
        g = LinearRegressionGradient()
        r1 = sgd(X, y, g, max_iter=50, tolerance=0,
                 rng=np.random.default_rng(5))
        r2 = sgd(X, y, g, max_iter=50, tolerance=0,
                 rng=np.random.default_rng(5))
        np.testing.assert_array_equal(r1.weights, r2.weights)

    def test_mgd_batch_size_bounds(self):
        X, y, _ = quadratic_problem(n=50)
        g = LinearRegressionGradient()
        result = mgd(X, y, g, batch_size=500, max_iter=5, tolerance=0)
        assert result.iterations == 5  # batch clamped to n, no crash

    def test_selector_validation(self):
        with pytest.raises(PlanError):
            make_minibatch_selector(100, 0)

    def test_full_batch_selector(self):
        assert full_batch_selector(1, None) == slice(None)


class TestVarianceBehaviour:
    def test_bgd_deltas_smoother_than_sgd(self):
        X, y, _ = quadratic_problem(n=500, noise=0.5)
        g = LinearRegressionGradient()
        rb = bgd(X, y, g, tolerance=0, max_iter=200)
        rs = sgd(X, y, g, tolerance=0, max_iter=200,
                 rng=np.random.default_rng(1))
        tail_b = rb.deltas[50:]
        tail_s = rs.deltas[50:]
        assert np.std(tail_s) > np.std(tail_b)

    def test_mgd_between_bgd_and_sgd(self):
        X, y, _ = quadratic_problem(n=500, noise=0.5)
        g = LinearRegressionGradient()
        rb = bgd(X, y, g, tolerance=0, max_iter=200)
        rm = mgd(X, y, g, batch_size=64, tolerance=0, max_iter=200,
                 rng=np.random.default_rng(1))
        rs = sgd(X, y, g, tolerance=0, max_iter=200,
                 rng=np.random.default_rng(1))
        std_b, std_m, std_s = (np.std(r.deltas[50:]) for r in (rb, rm, rs))
        assert std_b <= std_m <= std_s


class TestSVRG:
    def test_converges_on_quadratic(self):
        X, y, w_star = quadratic_problem(n=300)
        result = svrg(X, y, LinearRegressionGradient(),
                      update_frequency=30, step_size=0.05,
                      tolerance=1e-5, max_iter=3000,
                      rng=np.random.default_rng(2))
        assert result.converged
        np.testing.assert_allclose(result.weights, w_star, atol=0.05)

    def test_anchor_frequency_validated(self):
        X, y, _ = quadratic_problem()
        with pytest.raises(PlanError):
            svrg(X, y, LinearRegressionGradient(), update_frequency=1)

    def test_reduces_variance_vs_sgd(self):
        X, y, _ = quadratic_problem(n=400, noise=0.2)
        g = LinearRegressionGradient()
        rv = svrg(X, y, g, update_frequency=50, step_size=0.02,
                  tolerance=0, max_iter=400, rng=np.random.default_rng(3))
        rs = run_loop(
            X, y, g, make_minibatch_selector(400, 1),
            step_size="constant:0.02", tolerance=0, max_iter=400,
            rng=np.random.default_rng(3),
        )
        assert np.std(rv.deltas[100:]) < np.std(rs.deltas[100:])


class TestLineSearch:
    def test_converges_without_step_tuning(self):
        X, y, w_star = quadratic_problem()
        result = backtracking_bgd(X, y, LinearRegressionGradient(),
                                  tolerance=1e-6, max_iter=500)
        assert result.converged
        np.testing.assert_allclose(result.weights, w_star, atol=1e-3)

    def test_loss_monotonically_decreases(self):
        X, y, _ = quadratic_problem()
        result = backtracking_bgd(X, y, LinearRegressionGradient(),
                                  tolerance=0, max_iter=50)
        diffs = np.diff(result.losses)
        assert np.all(diffs <= 1e-12)

    def test_no_step_tuning_needed_when_scale_changes(self):
        """Line search adapts to a rescaled problem (25x the Lipschitz
        constant) where a fixed unit step would diverge."""
        X, y, _ = quadratic_problem()
        g = LinearRegressionGradient()
        ls = backtracking_bgd(X * 5, y * 5, g, tolerance=1e-5, max_iter=2000)
        assert ls.converged

    def test_parameter_validation(self):
        X, y, _ = quadratic_problem()
        g = LinearRegressionGradient()
        with pytest.raises(PlanError):
            backtracking_bgd(X, y, g, beta=1.5)
        with pytest.raises(PlanError):
            backtracking_bgd(X, y, g, alpha0=-1)


class TestAdaptiveVariants:
    @pytest.mark.parametrize("name", ["momentum", "adagrad", "adam"])
    def test_converges_on_quadratic(self, name):
        X, y, w_star = quadratic_problem()
        result = gd_registry.run(
            name, X, y, LinearRegressionGradient(),
            batch_size=64,
            step_size="constant:0.05" if name != "adam" else "constant:0.1",
            tolerance=1e-4, max_iter=5000,
            rng=np.random.default_rng(4),
        )
        # Adaptive variants should at least reach low loss.
        g = LinearRegressionGradient()
        assert g.loss(result.weights, X, y) < g.loss(np.zeros(5), X, y) / 10


class TestRegistry:
    def test_core_algorithms(self):
        assert CORE_ALGORITHMS == ("bgd", "mgd", "sgd")
        for name in CORE_ALGORITHMS:
            assert name in ALGORITHMS

    def test_info_unknown(self):
        with pytest.raises(PlanError):
            gd_registry.info("newton")

    def test_run_dispatches_all(self):
        X, y, _ = quadratic_problem(n=60)
        g = LinearRegressionGradient()
        for name in ALGORITHMS:
            result = gd_registry.run(
                name, X, y, g, tolerance=0, max_iter=3,
                rng=np.random.default_rng(0),
            )
            assert result.iterations >= 1

    def test_sgd_ignores_batch_override(self):
        X, y, _ = quadratic_problem(n=60, noise=1.0)
        g = LinearRegressionGradient()
        r = gd_registry.run("sgd", X, y, g, batch_size=60, tolerance=0,
                            max_iter=100, rng=np.random.default_rng(0))
        rb = gd_registry.run("bgd", X, y, g, tolerance=0, max_iter=100)
        # If batch_size leaked, SGD would equal BGD's smooth trajectory.
        assert np.std(r.deltas[20:]) > np.std(rb.deltas[20:])

    def test_task_convergence_on_classification(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        w = np.array([1.0, -2.0, 0.5, 0.0])
        y = np.sign(X @ w)
        g = task_gradient("logreg")
        result = bgd(X, y, g, step_size="constant:0.5", tolerance=0,
                     max_iter=300)
        pred = g.predict(result.weights, X)
        assert np.mean(pred == y) > 0.95
