"""Unit tests for metrics recording and network cost helpers."""

import pytest

from repro.cluster import ClusterSpec
from repro.cluster.metrics import MetricsRecorder, PhaseMetrics
from repro.cluster.network import broadcast, reduce_to_driver, tree_aggregate


class TestMetrics:
    def test_phase_created_on_access(self):
        recorder = MetricsRecorder()
        recorder.phase("compute").pages_disk += 5
        assert recorder.phases["compute"].pages_disk == 5

    def test_record_time(self):
        recorder = MetricsRecorder()
        recorder.record_time("sample", 1.5)
        recorder.record_time("sample", 0.5)
        assert recorder.phase("sample").sim_seconds == pytest.approx(2.0)

    def test_totals(self):
        recorder = MetricsRecorder()
        recorder.record_time("a", 1.0)
        recorder.record_time("b", 2.0)
        recorder.phase("a").jobs += 3
        recorder.phase("b").network_bytes += 100
        assert recorder.total_seconds == pytest.approx(3.0)
        assert recorder.total_jobs == 3
        assert recorder.total_network_bytes == 100

    def test_snapshot_is_plain_dict(self):
        recorder = MetricsRecorder()
        recorder.record_time("x", 1.0)
        snap = recorder.snapshot()
        assert snap["x"]["sim_seconds"] == 1.0
        snap["x"]["sim_seconds"] = 99
        assert recorder.phase("x").sim_seconds == 1.0

    def test_merge(self):
        a = PhaseMetrics(sim_seconds=1.0, pages_disk=2, jobs=1)
        b = PhaseMetrics(sim_seconds=0.5, pages_disk=3, seeks=7)
        a.merge(b)
        assert a.sim_seconds == 1.5
        assert a.pages_disk == 5
        assert a.seeks == 7
        assert a.jobs == 1

    def test_summary_includes_all_phases(self):
        recorder = MetricsRecorder()
        recorder.record_time("alpha", 1.0)
        recorder.record_time("beta", 2.0)
        text = recorder.summary()
        assert "alpha" in text and "beta" in text


class TestNetworkHelpers:
    @pytest.fixture
    def spec(self):
        return ClusterSpec(jitter_sigma=0.0)

    def test_reduce_to_driver_counts_all_partials(self, spec):
        seconds, nbytes = reduce_to_driver(spec, 16, 800)
        assert nbytes == 16 * 800
        assert seconds == pytest.approx(spec.transfer_s(16 * 800))

    def test_reduce_zero_partials(self, spec):
        assert reduce_to_driver(spec, 0, 800) == (0.0, 0)

    def test_tree_aggregate_adds_barriers(self, spec):
        flat_s, _ = reduce_to_driver(spec, 64, 8000)
        tree_s, _ = tree_aggregate(spec, 64, 8000, depth=2)
        assert tree_s > flat_s

    def test_tree_aggregate_single_partial_costs_nothing(self, spec):
        seconds, nbytes = tree_aggregate(spec, 1, 800)
        assert seconds == 0.0
        assert nbytes == 0

    def test_tree_levels_shrink(self, spec):
        # 64 partials, depth 2 -> scale 8 -> level sizes 64, 8.
        _, nbytes = tree_aggregate(spec, 64, 100, depth=2)
        assert nbytes == (64 + 8) * 100

    def test_broadcast_scales_with_nodes(self, spec):
        two, _ = broadcast(spec.with_overrides(n_nodes=2), 2, 1000)
        single, _ = broadcast(spec, 1, 1000)
        assert single == 0.0
        assert two > 0
