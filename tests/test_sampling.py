"""Unit tests for the three sampling strategies (Section 6)."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster, make_sampler
from repro.cluster.sampling import SAMPLER_NAMES
from repro.errors import PlanError

from support import make_dataset


@pytest.fixture
def multi_ds(spec):
    return make_dataset(n_phys=1000, d=10, sim_n=100_000, spec=spec,
                        block_bytes=64 * 1024)


@pytest.fixture
def engine(spec):
    return SimulatedCluster(spec, seed=0)


class TestSamplerFactory:
    def test_known_names(self, engine, multi_ds):
        for name in SAMPLER_NAMES:
            sampler = make_sampler(name, engine, multi_ds, 10)
            assert sampler.name == name

    def test_unknown_name(self, engine, multi_ds):
        with pytest.raises(PlanError):
            make_sampler("reservoir", engine, multi_ds, 10)

    def test_zero_batch_rejected(self, engine, multi_ds):
        with pytest.raises(PlanError):
            make_sampler("bernoulli", engine, multi_ds, 0)


class TestBernoulli:
    def test_scans_whole_dataset(self, engine, multi_ds):
        sampler = make_sampler("bernoulli", engine, multi_ds, 100)
        before = engine.clock
        draw = sampler.draw()
        assert engine.clock > before
        # Full scan => every partition touched.
        assert len(draw.partitions) == multi_ds.n_partitions
        assert engine.metrics.phase("sample").rows_processed >= \
            multi_ds.stats.n

    def test_sample_size_poisson_around_batch(self, engine, multi_ds):
        sampler = make_sampler("bernoulli", engine, multi_ds, 400)
        sizes = [sampler.draw().sim_size for _ in range(30)]
        assert 300 < np.mean(sizes) < 500

    def test_indices_within_bounds(self, engine, multi_ds):
        sampler = make_sampler("bernoulli", engine, multi_ds, 50)
        draw = sampler.draw()
        assert draw.indices.min() >= 0
        assert draw.indices.max() < multi_ds.n_phys

    def test_sgd_sized_sample_never_empty(self, engine, multi_ds):
        sampler = make_sampler("bernoulli", engine, multi_ds, 1)
        for _ in range(20):
            draw = sampler.draw()
            assert draw.sim_size >= 1
            assert len(draw.indices) >= 1


class TestRandomPartition:
    def test_touches_one_partition(self, engine, multi_ds):
        sampler = make_sampler("random", engine, multi_ds, 10)
        draw = sampler.draw()
        assert len(draw.partitions) == 1

    def test_indices_inside_chosen_partition(self, engine, multi_ds):
        sampler = make_sampler("random", engine, multi_ds, 10)
        for _ in range(10):
            draw = sampler.draw()
            part = multi_ds.partitions[draw.partitions[0]]
            assert np.all(draw.indices >= part.phys_lo)
            assert np.all(draw.indices < part.phys_hi)

    def test_charges_per_row_seeks(self, engine, multi_ds):
        sampler = make_sampler("random", engine, multi_ds, 100)
        sampler.draw()
        assert engine.metrics.phase("sample").seeks >= 100

    def test_cheaper_than_bernoulli_on_large_data(self, spec, multi_ds):
        e1 = SimulatedCluster(spec, seed=0)
        e2 = SimulatedCluster(spec, seed=0)
        make_sampler("bernoulli", e1, multi_ds, 10).draw()
        make_sampler("random", e2, multi_ds, 10).draw()
        assert e2.clock < e1.clock

    def test_covers_partitions_over_time(self, engine, multi_ds):
        sampler = make_sampler("random", engine, multi_ds, 5)
        seen = {sampler.draw().partitions[0] for _ in range(100)}
        assert len(seen) > multi_ds.n_partitions / 3


class TestShuffledPartition:
    def test_first_draw_pays_shuffle(self, spec, multi_ds):
        e1 = SimulatedCluster(spec, seed=0)
        sampler = make_sampler("shuffle", e1, multi_ds, 10)
        t_first_before = e1.clock
        sampler.draw()
        first_cost = e1.clock - t_first_before
        t2 = e1.clock
        sampler.draw()
        second_cost = e1.clock - t2
        assert second_cost < first_cost

    def test_sequential_draws_stay_in_partition(self, engine, multi_ds):
        sampler = make_sampler("shuffle", engine, multi_ds, 10)
        first = sampler.draw()
        second = sampler.draw()
        assert first.partitions == second.partitions

    def test_exhaustion_triggers_new_partition_shuffle(self, engine, multi_ds):
        part_rows = multi_ds.partitions[0].sim_rows
        batch = max(1, part_rows // 3)
        sampler = make_sampler("shuffle", engine, multi_ds, batch)
        pids = [sampler.draw().partitions[0] for _ in range(20)]
        # Eventually the cursor exhausts a partition and a new one is
        # picked (with 20 draws of 1/3-partition batches it must).
        assert len(set(pids)) > 1

    def test_no_repeats_until_wraparound(self, engine, spec):
        # Un-replicated dataset: physical rows == simulated rows, so the
        # permutation cursor must not repeat rows across draws.
        ds = make_dataset(n_phys=500, d=5, spec=spec)
        sampler = make_sampler("shuffle", engine, ds, 10)
        draw1 = sampler.draw()
        draw2 = sampler.draw()
        overlap = set(draw1.indices) & set(draw2.indices)
        assert not overlap

    def test_cheapest_per_draw_of_all(self, spec, multi_ds):
        costs = {}
        for name in SAMPLER_NAMES:
            engine = SimulatedCluster(spec, seed=0)
            sampler = make_sampler(name, engine, multi_ds, 100)
            sampler.draw()  # warmup (shuffle pays its prep here)
            before = engine.clock
            for _ in range(10):
                sampler.draw()
            costs[name] = engine.clock - before
        # The steady-state cursor read is the cheapest mechanism of the
        # three; Bernoulli-vs-random ordering depends on cache residency
        # (Section 8.6 observes Bernoulli winning on small datasets).
        assert costs["shuffle"] < costs["random"]
        assert costs["shuffle"] < costs["bernoulli"]

    def test_bernoulli_worst_on_large_uncached_data(self, spec):
        # A dataset far larger than the cache: every Bernoulli draw
        # re-reads everything from disk, random touches one partition.
        small_cache = spec.with_overrides(cache_bytes=1024 ** 2)
        ds = make_dataset(n_phys=1000, d=10, sim_n=10_000_000,
                          spec=small_cache)
        costs = {}
        for name in SAMPLER_NAMES:
            engine = SimulatedCluster(small_cache, seed=0)
            sampler = make_sampler(name, engine, ds, 100)
            sampler.draw()
            before = engine.clock
            for _ in range(5):
                sampler.draw()
            costs[name] = engine.clock - before
        assert costs["bernoulli"] > costs["random"]
        assert costs["bernoulli"] > costs["shuffle"]


class TestPhysicalScaling:
    def test_physical_batch_capped_by_phys_rows(self, spec):
        ds = make_dataset(n_phys=50, d=5, sim_n=50_000, spec=spec)
        engine = SimulatedCluster(spec, seed=0)
        sampler = make_sampler("bernoulli", engine, ds, 1000)
        draw = sampler.draw()
        assert draw.sim_size > 500       # simulated batch at paper scale
        assert len(draw.indices) <= 50   # physical rows available
