"""Unit tests for the partitioned storage layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, PartitionedDataset
from repro.cluster.storage import (
    DatasetStats,
    binary_bytes_per_row,
    text_bytes_per_row,
)
from repro.errors import PlanError

from support import make_dataset


class TestDatasetStats:
    def test_dense_binary_bytes(self):
        stats = DatasetStats("x", "svm", n=100, d=10)
        # 10 doubles + label per row
        assert stats.binary_bytes == 100 * (8 + 80)

    def test_sparse_binary_bytes_use_density(self):
        stats = DatasetStats("x", "logreg", n=100, d=1000, density=0.01,
                             is_sparse=True)
        # 10 nnz * 12 bytes + 8-byte label
        assert stats.binary_bytes == 100 * (8 + 10 * 12)

    def test_text_larger_than_binary_for_dense(self):
        stats = DatasetStats("x", "svm", n=1000, d=50)
        assert stats.text_bytes != stats.binary_bytes

    def test_row_overrides_respected(self):
        stats = DatasetStats("x", "svm", n=10, d=5, row_text_bytes=100.0,
                             row_binary_bytes=40.0)
        assert stats.text_bytes == 1000
        assert stats.binary_bytes == 400

    def test_bytes_for_unknown_representation(self):
        stats = DatasetStats("x", "svm", n=10, d=5)
        with pytest.raises(PlanError):
            stats.bytes_for("parquet")

    def test_nnz_per_row(self):
        dense = DatasetStats("x", "svm", n=10, d=5)
        assert dense.nnz_per_row == 5
        sparse = DatasetStats("x", "svm", n=10, d=100, density=0.2,
                              is_sparse=True)
        assert sparse.nnz_per_row == pytest.approx(20)

    def test_weight_vector_bytes(self):
        stats = DatasetStats("x", "svm", n=10, d=7)
        assert stats.weight_vector_bytes == 56


class TestPartitionedDataset:
    def test_single_partition_for_small_data(self):
        ds = make_dataset(n_phys=100, d=5)
        assert ds.n_partitions == 1

    def test_partition_count_follows_block_size(self):
        spec = ClusterSpec(jitter_sigma=0.0)
        ds = make_dataset(n_phys=1000, d=5, spec=spec, sim_n=1000,
                          block_bytes=1000)
        expected = -(-ds.total_bytes // 1000)  # ceil division
        assert ds.n_partitions == min(expected, 1000)

    def test_partitions_cover_all_physical_rows(self):
        ds = make_dataset(n_phys=997, d=3, block_bytes=2048)
        lo = ds.partitions[0].phys_lo
        assert lo == 0
        for prev, part in zip(ds.partitions, ds.partitions[1:]):
            assert part.phys_lo == prev.phys_hi
        assert ds.partitions[-1].phys_hi == 997

    def test_partitions_cover_all_simulated_rows(self):
        ds = make_dataset(n_phys=100, d=3, sim_n=100_000, block_bytes=4096)
        assert sum(p.sim_rows for p in ds.partitions) == 100_000

    def test_sim_replication(self):
        ds = make_dataset(n_phys=100, d=3, sim_n=5000)
        assert ds.sim_replication == pytest.approx(50.0)

    def test_as_binary_shares_physical_arrays(self):
        ds = make_dataset()
        binary = ds.as_binary()
        assert binary.X is ds.X
        assert binary.representation == "binary"
        assert binary.as_binary() is binary

    def test_binary_changes_total_bytes(self):
        ds = make_dataset(n_phys=500, d=40)
        assert ds.as_binary().total_bytes != ds.total_bytes

    def test_empty_dataset_rejected(self):
        stats = DatasetStats("x", "svm", n=1, d=2)
        with pytest.raises(PlanError):
            PartitionedDataset(np.zeros((0, 2)), np.zeros(0), stats)

    def test_mismatched_labels_rejected(self):
        stats = DatasetStats("x", "svm", n=10, d=2)
        with pytest.raises(PlanError):
            PartitionedDataset(np.zeros((10, 2)), np.zeros(9), stats)

    def test_sim_smaller_than_physical_rejected(self):
        stats = DatasetStats("x", "svm", n=5, d=2)
        with pytest.raises(PlanError):
            PartitionedDataset(np.zeros((10, 2)), np.zeros(10), stats)

    def test_partition_rows_returns_physical_indices(self):
        ds = make_dataset(n_phys=100, d=3, block_bytes=1024)
        idx = ds.partition_rows(0)
        part = ds.partitions[0]
        assert idx[0] == part.phys_lo
        assert idx[-1] == part.phys_hi - 1

    def test_describe_mentions_name_and_partitions(self):
        ds = make_dataset()
        text = ds.describe()
        assert "test" in text
        assert "partitions" in text


class TestByteModelProperties:
    @given(
        d=st.integers(min_value=1, max_value=10_000),
        density=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bytes_per_row_positive(self, d, density):
        assert text_bytes_per_row(d, density, True) > 0
        assert text_bytes_per_row(d, density, False) > 0
        assert binary_bytes_per_row(d, density, True) > 0
        assert binary_bytes_per_row(d, density, False) > 0

    @given(
        n=st.integers(min_value=1, max_value=10_000_000),
        d=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_stats_bytes_scale_with_n(self, n, d):
        small = DatasetStats("x", "svm", n=n, d=d)
        large = DatasetStats("x", "svm", n=n * 2, d=d)
        assert large.binary_bytes == 2 * small.binary_bytes
