"""Learned residual cost model: harvest, fit, mixing, serving."""

import json
import math

import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.errors import LearnedModelError
from repro.learned import (
    DEFAULT_MIN_TRAINING,
    MixedCostModel,
    ResidualModel,
    TraceDataset,
    feature_vector,
)
from repro.runtime import (
    AdaptiveTrainer,
    CalibrationStore,
    PerturbedCostModel,
    PlanSegment,
)
from repro.runtime.trace import ExecutionTrace

from support import make_dataset


@pytest.fixture
def dataset(spec):
    return make_dataset(n_phys=400, d=10, task="logreg", spec=spec, seed=3)


@pytest.fixture
def training():
    return TrainingSpec(task="logreg", tolerance=1e-2, seed=1)


def segment(algorithm="bgd", predicted_per_iter=1.0, observed_per_iter=2.0,
            iterations=20, predicted_iterations=20, converged=True,
            applied_cost_factor=1.0):
    return PlanSegment(
        plan=algorithm.upper(),
        algorithm=algorithm,
        predicted_iterations=predicted_iterations,
        predicted_per_iteration_s=predicted_per_iter,
        predicted_total_s=predicted_per_iter * predicted_iterations,
        applied_cost_factor=applied_cost_factor,
        iterations=iterations,
        sim_seconds=observed_per_iter * iterations,
        converged=converged,
    )


def corpus(stats, spec, algorithm="bgd", ratio=4.0, count=8, epsilon=1e-2):
    """A TraceDataset of ``count`` segments with a fixed cost ratio."""
    ds = TraceDataset()
    for _ in range(count):
        ds.add_segment(
            segment(algorithm=algorithm, predicted_per_iter=1.0,
                    observed_per_iter=ratio),
            stats, spec, epsilon=epsilon,
        )
    return ds


class TestTraceDataset:
    def test_harvests_cost_and_iterations_targets(self, spec, dataset):
        ds = TraceDataset()
        ok = ds.add_segment(
            segment(observed_per_iter=3.0, iterations=30,
                    predicted_iterations=20),
            dataset.stats, spec, epsilon=1e-2,
        )
        assert ok and len(ds) == 1
        example = ds.examples[0]
        assert example.log_cost_ratio == pytest.approx(math.log(3.0))
        assert example.log_iterations_ratio == pytest.approx(
            math.log(30 / 20)
        )
        assert len(example.features) == len(feature_vector(
            dataset.stats, spec, "bgd"
        ))

    def test_applied_factors_compose_back_in(self, spec, dataset):
        # A segment priced under an already-applied x2 correction that
        # observes ratio 2 really ran at 4x the *base* model's price.
        ds = TraceDataset()
        ds.add_segment(
            segment(observed_per_iter=2.0, applied_cost_factor=2.0),
            dataset.stats, spec,
        )
        assert ds.examples[0].log_cost_ratio == pytest.approx(math.log(4.0))

    def test_short_and_unconverged_segments_are_skipped(self, spec, dataset):
        ds = TraceDataset()
        assert not ds.add_segment(
            segment(iterations=1), dataset.stats, spec
        )
        ds.add_segment(
            segment(converged=False), dataset.stats, spec
        )
        assert ds.examples[0].log_iterations_ratio is None

    def test_add_trace_counts_and_tolerance(self, spec, dataset):
        trace = ExecutionTrace(
            workload="w", cluster_signature="c", tolerance=1e-3,
            segments=[segment(), segment(iterations=1)],
        )
        ds = TraceDataset()
        assert ds.add_trace(trace, dataset.stats, spec) == 1
        assert ds.counts() == {"bgd": 1}


class TestResidualModel:
    def test_learns_the_corpus_ratio(self, spec, dataset):
        model = ResidualModel().fit(corpus(dataset.stats, spec, ratio=4.0))
        features = feature_vector(dataset.stats, spec, "bgd", epsilon=1e-2)
        assert model.predict_cost_ratio("bgd", features) == pytest.approx(
            4.0, rel=1e-6
        )
        assert model.predict_cost_ratio("sgd", features) is None
        assert model.training_count("bgd") == 8
        assert model.training_count("sgd") == 0

    def test_json_round_trip_preserves_predictions(self, spec, dataset,
                                                   tmp_path):
        model = ResidualModel().fit(corpus(dataset.stats, spec, ratio=4.0))
        path = str(tmp_path / "model.json")
        model.save(path)
        loaded = ResidualModel.open(path)
        features = feature_vector(dataset.stats, spec, "bgd", epsilon=1e-2)
        assert loaded.predict_cost_ratio("bgd", features) == pytest.approx(
            model.predict_cost_ratio("bgd", features)
        )
        assert loaded.state_digest() == model.state_digest()

    def test_newer_format_refuses_to_load(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"model_format": 99}))
        with pytest.raises(LearnedModelError):
            ResidualModel.open(str(path))

    def test_additive_fields_degrade_gracefully(self, spec, dataset):
        model = ResidualModel().fit(corpus(dataset.stats, spec))
        payload = json.loads(json.dumps(model.to_dict()))
        payload["a_future_field"] = {"x": 1}
        for example in payload["dataset"]["examples"]:
            example["confidence"] = 0.5
        loaded = ResidualModel.from_dict(payload)
        assert loaded.training_count("bgd") == model.training_count("bgd")

    def test_digest_tracks_observations_and_votes(self, spec, dataset):
        model = ResidualModel()
        d0 = model.state_digest()
        model.observe_segment(segment(), dataset.stats, spec)
        d1 = model.state_digest()
        assert d1 != d0
        model.vote_curve_family("bgd", "exponential")
        assert model.state_digest() != d1

    def test_curve_family_majority_gating(self):
        model = ResidualModel()
        model.vote_curve_family("bgd", "exponential")
        model.vote_curve_family("bgd", "exponential")
        assert model.curve_family("bgd") is None  # below min_votes
        model.vote_curve_family("bgd", "exponential")
        model.vote_curve_family("bgd", "power")
        assert model.curve_families() == {"bgd": "exponential"}


class TestMixedCostModel:
    def test_below_gate_serves_nothing(self, spec, dataset):
        model = ResidualModel().fit(corpus(
            dataset.stats, spec, count=DEFAULT_MIN_TRAINING - 1
        ))
        mixed = MixedCostModel(model)
        assert mixed.factors(("bgd", "sgd"), dataset.stats, spec) == {}

    def test_blend_leans_learned_on_fresh_calibration(self, spec, dataset):
        model = ResidualModel().fit(corpus(dataset.stats, spec, ratio=4.0,
                                           count=8))
        mixed = MixedCostModel(model)
        factors = mixed.factors(("bgd",), dataset.stats, spec, epsilon=1e-2)
        assert set(factors) == {"bgd"}
        # beta = 8 / (8 + 0 + 1): almost all learned.
        assert factors["bgd"].blend_weight == pytest.approx(8 / 9)
        assert factors["bgd"].cost_factor == pytest.approx(
            4.0 ** (8 / 9), rel=1e-6
        )

    def test_ewma_evidence_pulls_the_blend_back(self, spec, dataset):
        model = ResidualModel().fit(corpus(dataset.stats, spec, ratio=4.0,
                                           count=8))
        mixed = MixedCostModel(model)
        store = CalibrationStore()
        for _ in range(8):
            store.observe("bgd", spec, cost_ratio=2.0)
        corrections = {"bgd": store.correction("bgd", spec)}
        factors = mixed.factors(("bgd",), dataset.stats, spec,
                                epsilon=1e-2, corrections=corrections)
        # Half the evidence each (8 vs 8): geometric middle ground.
        assert 2.0 < factors["bgd"].cost_factor < 4.0


class TestOptimizerIntegration:
    def test_below_gate_ranking_is_bit_identical(self, spec, dataset,
                                                 training):
        model = ResidualModel().fit(corpus(
            dataset.stats, spec, count=DEFAULT_MIN_TRAINING - 1
        ))
        store = CalibrationStore()
        store.observe("bgd", spec, cost_ratio=1.7)
        engine = SimulatedCluster(spec, seed=0)
        plain = GDOptimizer(engine, calibration=store).optimize(
            dataset, training, fixed_iterations=40
        )
        gated = GDOptimizer(
            engine, calibration=store, learned=MixedCostModel(model)
        ).optimize(dataset, training, fixed_iterations=40)
        assert [c.total_s for c in plain.candidates] == \
            [c.total_s for c in gated.candidates]
        assert [c.breakdown for c in plain.candidates] == \
            [c.breakdown for c in gated.candidates]
        assert str(plain.chosen_plan) == str(gated.chosen_plan)

    def test_mixed_ranking_recovers_the_truly_cheapest_plan(
            self, spec, dataset, training):
        """Seeded end-to-end recovery: a perturbed cost model mis-prices
        one algorithm; analytic+EWMA alone falls for it, the mixed
        ranking does not -- and its plan-choice regret is strictly
        lower."""
        # A simulated 2M-row workload: per-iteration costs actually
        # separate the algorithms (a tiny physical sample would be
        # iteration-overhead-dominated and nothing could recover it).
        dataset = make_dataset(
            n_phys=400, d=10, sim_n=2_000_000, task="logreg", spec=spec,
            seed=3,
        )
        engine = SimulatedCluster(spec, seed=0)
        truth = GDOptimizer(engine).optimize(
            dataset, training, fixed_iterations=60
        )
        best = truth.chosen_plan.algorithm
        victim, factor = "bgd", 0.05
        assert best != victim
        perturbed = PerturbedCostModel(spec, {victim: factor})

        baseline = GDOptimizer(
            engine, cost_model=perturbed, calibration=CalibrationStore()
        ).optimize(dataset, training, fixed_iterations=60)
        assert baseline.chosen_plan.algorithm == victim

        # Traces taught the learned model the victim's true price
        # (observed/predicted = 1/factor under the perturbed model).
        model = ResidualModel().fit(corpus(
            dataset.stats, spec, algorithm=victim, ratio=1.0 / factor,
            count=8, epsilon=training.tolerance,
        ))
        mixed = GDOptimizer(
            engine, cost_model=perturbed, calibration=CalibrationStore(),
            learned=MixedCostModel(model),
        ).optimize(dataset, training, fixed_iterations=60)
        assert mixed.chosen_plan.algorithm == best

        true_total = {str(c.plan): c.total_s for c in truth.candidates}
        best_total = min(true_total.values())
        regret_baseline = true_total[str(baseline.chosen_plan)] - best_total
        regret_mixed = true_total[str(mixed.chosen_plan)] - best_total
        assert regret_mixed < regret_baseline
        assert regret_mixed == pytest.approx(0.0)


class TestServiceIntegration:
    def test_learned_digest_joins_the_cache_stamp(self, spec, dataset,
                                                  training):
        from repro.service import OptimizerService

        model = ResidualModel()
        service = OptimizerService(
            spec=spec, seed=5, learned=model,
            speculation=SpeculationSettings(
                sample_size=400, time_budget_s=0.5,
                max_speculation_iters=800,
            ),
        )
        first = service.optimize(dataset, training, fixed_iterations=25)
        assert not first.cache_hit
        hit = service.optimize(dataset, training, fixed_iterations=25)
        assert hit.cache_hit
        # Any learned-state change (here: a curve vote) must invalidate
        # the stamp and trigger a recost, not a blind reuse.
        service.learned.vote_curve_family("bgd", "exponential")
        recost = service.optimize(dataset, training, fixed_iterations=25)
        assert recost.recalibrated and not recost.cache_hit

    def test_plain_service_stamps_stay_plain(self, spec, dataset, training):
        """No learned model -> the stamp is the bare calibration digest
        (persisted entries stay interchangeable with older builds)."""
        from repro.service import OptimizerService

        service = OptimizerService(spec=spec, seed=5)
        assert service._pricing_digest() == \
            service.calibration.state_digest()
        learned_service = OptimizerService(spec=spec, seed=5,
                                           learned=ResidualModel())
        assert "+" in learned_service._pricing_digest()


class TestCurveFamilyFeedback:
    def test_estimator_honors_model_overrides(self, dataset, training):
        settings = SpeculationSettings(
            sample_size=200, time_budget_s=0.5, max_speculation_iters=300,
            min_points_for_fit=3,
        )
        default = SpeculativeEstimator(settings, seed=0).estimate(
            dataset.X, dataset.y, training.gradient(), "bgd",
            target_tolerance=1e-4,
        )
        overridden = SpeculativeEstimator(
            settings, seed=0, model_overrides={"bgd": "exponential"}
        ).estimate(
            dataset.X, dataset.y, training.gradient(), "bgd",
            target_tolerance=1e-4,
        )
        assert default.curve.model != "exponential"
        assert overridden.curve.model == "exponential"

    def test_adaptive_refits_vote_into_the_learned_model(
            self, spec, dataset, training):
        engine = SimulatedCluster(spec, seed=0)
        model = ResidualModel()
        trainer = AdaptiveTrainer(
            GDOptimizer(engine, calibration=CalibrationStore()),
            calibration=CalibrationStore(),
            learned=MixedCostModel(model),
        )
        outcome = trainer.train(dataset, training, fixed_iterations=40)
        assert outcome.trace.segments
        # Every executed segment became an online training example.
        counts = model.dataset.counts()
        assert sum(counts.values()) >= 1
