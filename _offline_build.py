"""Minimal stand-ins for the ``wheel`` package, for offline editable installs.

The environment this repo is developed in has no network access and no
``wheel`` distribution, but setuptools' PEP 660 editable builds hard-import
``wheel.wheelfile.WheelFile`` and resolve a ``bdist_wheel`` command.  This
module provides just enough of both for ``pip install -e .
--no-build-isolation`` to succeed: a RECORD-writing ZipFile subclass and a
pure-Python ``bdist_wheel`` that only knows how to tag and describe a
wheel, not build one.

``setup.py`` calls :func:`ensure_wheel_modules` before ``setup()``; when
the real ``wheel`` package is importable the stubs stay completely inert.
"""

from __future__ import annotations

import base64
import email
import hashlib
import os
import shutil
import sys
import types
import zipfile

from distutils.core import Command

_GENERATOR = "ml4all-repro offline wheel stub"


class WheelFile(zipfile.ZipFile):
    """A write-mode ZipFile that appends a PEP 376-style RECORD on close."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        stem = "-".join(os.path.basename(str(file)).split("-")[:2])
        self._record_name = f"{stem}.dist-info/RECORD"
        self._record = [] if mode in ("w", "x", "a") else None

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        if self._record is not None:
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo):
                arcname = zinfo_or_arcname.filename
            else:
                arcname = zinfo_or_arcname
            payload = data.encode("utf-8") if isinstance(data, str) else data
            self._record.append((arcname, payload))

    def write(self, filename, arcname=None, *args, **kwargs):
        super().write(filename, arcname, *args, **kwargs)
        if self._record is not None:
            with open(filename, "rb") as handle:
                payload = handle.read()
            name = filename if arcname is None else arcname
            self._record.append((str(name).replace(os.sep, "/"), payload))

    def write_files(self, base_dir):
        """Add every file under ``base_dir`` (the unpacked wheel tree)."""
        for root, dirs, files in os.walk(base_dir):
            dirs.sort()
            for name in sorted(files):
                full = os.path.join(root, name)
                arcname = os.path.relpath(full, base_dir).replace(os.sep, "/")
                self.write(full, arcname)

    def close(self):
        if self.fp is not None and self._record is not None:
            lines = []
            for arcname, payload in self._record:
                digest = base64.urlsafe_b64encode(
                    hashlib.sha256(payload).digest()
                ).rstrip(b"=").decode("ascii")
                lines.append(f"{arcname},sha256={digest},{len(payload)}")
            lines.append(f"{self._record_name},,")
            self._record = None
            super().writestr(self._record_name, "\n".join(lines) + "\n")
        super().close()


class bdist_wheel(Command):
    """Tag/metadata subset of the real bdist_wheel command.

    setuptools' ``editable_wheel`` only calls :meth:`get_tag` and
    :meth:`write_wheelfile`; building a full (non-editable) wheel still
    requires the real ``wheel`` package.
    """

    description = "offline stand-in for wheel's bdist_wheel"
    user_options = []

    def initialize_options(self):
        self.dist_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def get_tag(self):
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base, generator=_GENERATOR):
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                "Wheel-Version: 1.0\n"
                f"Generator: {generator}\n"
                "Root-Is-Purelib: true\n"
                f"Tag: {'-'.join(self.get_tag())}\n"
            )

    def run(self):
        raise RuntimeError(
            "building a distributable wheel needs the real 'wheel' "
            "package; this offline stub only supports editable installs"
        )

    # setuptools' dist_info command delegates the egg-info -> dist-info
    # conversion to bdist_wheel.
    def egg2dist(self, egginfo_path, distinfo_path):
        egginfo_path = str(egginfo_path)
        distinfo_path = str(distinfo_path)
        if os.path.isdir(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)

        with open(os.path.join(egginfo_path, "PKG-INFO"),
                  encoding="utf-8") as handle:
            message = email.message_from_file(handle)
        requires_path = os.path.join(egginfo_path, "requires.txt")
        if os.path.exists(requires_path):
            with open(requires_path, encoding="utf-8") as handle:
                for requirement in _requires_dist(handle.read()):
                    message["Requires-Dist"] = requirement
        with open(os.path.join(distinfo_path, "METADATA"), "w",
                  encoding="utf-8") as handle:
            handle.write(message.as_string())

        for name in ("entry_points.txt", "top_level.txt"):
            source = os.path.join(egginfo_path, name)
            if os.path.exists(source):
                shutil.copy2(source, os.path.join(distinfo_path, name))


def _requires_dist(requires_txt):
    """Translate egg-info requires.txt sections into Requires-Dist values."""
    extra = marker = None
    for raw in requires_txt.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            extra, _, marker = line[1:-1].partition(":")
            extra = extra.strip() or None
            marker = marker.strip() or None
            continue
        conditions = []
        if extra:
            conditions.append(f'extra == "{extra}"')
        if marker:
            conditions.append(f"({marker})")
        if conditions:
            yield f"{line} ; {' and '.join(conditions)}"
        else:
            yield line


def ensure_wheel_modules() -> dict:
    """Register the stubs under the ``wheel`` module names if needed.

    Returns the ``cmdclass`` mapping to pass to ``setup()`` (empty when
    the real ``wheel`` package is available).
    """
    try:
        import wheel.wheelfile  # noqa: F401  (real package present)

        return {}
    except ImportError:
        pass

    wheel_mod = types.ModuleType("wheel")
    wheel_mod.__version__ = "0.0.0+offline.stub"
    wheelfile_mod = types.ModuleType("wheel.wheelfile")
    wheelfile_mod.WheelFile = WheelFile
    bdist_mod = types.ModuleType("wheel.bdist_wheel")
    bdist_mod.bdist_wheel = bdist_wheel
    wheel_mod.wheelfile = wheelfile_mod
    wheel_mod.bdist_wheel = bdist_mod
    sys.modules["wheel"] = wheel_mod
    sys.modules["wheel.wheelfile"] = wheelfile_mod
    sys.modules["wheel.bdist_wheel"] = bdist_mod
    return {"bdist_wheel": bdist_wheel}
