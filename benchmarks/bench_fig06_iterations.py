"""Benchmark: regenerate Figure 6 (estimated vs real iterations)."""

from _helpers import run_once

from repro.experiments import run_experiment


def _as_int(cell):
    if cell is None:
        return None
    if isinstance(cell, str) and cell.startswith(">"):
        return None
    return int(cell)


def test_fig06_iterations(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig06", ctx))
    emit(tables, "fig06")
    table = tables[0]

    in_order = 0
    comparisons = 0
    for row in table.rows:
        for algorithm in ("bgd", "mgd", "sgd"):
            real = _as_int(row[f"{algorithm}_real"])
            estim = row.get(f"{algorithm}_estim")
            if real is None or estim is None:
                continue
            comparisons += 1
            # "in the same order of magnitude" (one decade either way,
            # with slack for SGD stochasticity).
            if 0.05 <= estim / real <= 20:
                in_order += 1
    assert comparisons >= 4, "too few comparable estimates"
    assert in_order >= comparisons * 0.6, (
        f"only {in_order}/{comparisons} estimates within an order of "
        "magnitude"
    )
