"""Benchmark: regenerate Figure 12 (testing error across systems)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_fig12_accuracy(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig12", ctx))
    emit(tables, "fig12")
    table = tables[0]

    comparable = 0
    close = 0
    for row in table.rows:
        mllib = row["mllib_mse"]
        ml4all = row["ml4all_mse"]
        if mllib is None or ml4all is None:
            continue
        comparable += 1
        # "the error is significantly close to the ones of MLlib":
        # within 0.15 absolute MSE or 35% relative.
        if abs(ml4all - mllib) <= max(0.15, 0.35 * max(mllib, 1e-6)):
            close += 1
    assert comparable >= 4
    # The paper's one exception is SGD on skewed rcv1; allow two outliers.
    assert close >= comparable - 2, (
        f"only {close}/{comparable} ML4all errors close to MLlib"
    )
