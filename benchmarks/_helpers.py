"""Helpers shared by the benchmark modules."""


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic (seeded) and heavy; multiple
    benchmark rounds would only repeat identical work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def as_seconds(cell):
    """Parse a table cell that may be a float, 'OOM' or '>Ns'."""
    if cell is None:
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    text = str(cell)
    if text.startswith(">"):
        text = text[1:].rstrip("s")
        try:
            return float(text)
        except ValueError:
            return None
    try:
        return float(text)
    except ValueError:
        return None
