"""Benchmarks: the paper's extensions and design-choice ablations."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_ext_extended_space(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("ext_space", ctx))
    emit(tables, "ext_space")
    table = tables[0]

    plan_counts = table.column("plans")
    # 11 core plans; +5 per extra stochastic algorithm (Figure 5 logic).
    assert plan_counts[0] == 11
    assert plan_counts[1] == 16
    assert plan_counts[2] == 31
    for row in table.rows:
        assert row["chosen"]


def test_ext_curvefit_ablation(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("ext_curvefit", ctx))
    emit(tables, "ext_curvefit")
    table = tables[0]

    # Wherever both fit, the generalized power model should predict at
    # least as well as the rigid a/e model (it nests it).
    power_better_or_equal = 0
    comparable = 0
    for row in table.rows:
        pr, ir = row.get("power_ratio"), row.get("inverse_ratio")
        if pr is None or ir is None:
            continue
        comparable += 1
        if abs(pr - 1) <= abs(ir - 1) + 0.05:
            power_better_or_equal += 1
    if comparable:
        assert power_better_or_equal >= comparable * 0.6


def test_ext_tuning(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("ext_tuning", ctx))
    emit(tables, "ext_tuning")
    table = tables[0]

    chosen = [r for r in table.rows if r["chosen"] == "<=="]
    assert len(chosen) == 1
    chosen = chosen[0]
    assert chosen["converged"]
    # The tuned pick must land within 2x of the true fastest *converged*
    # candidate's execution time.
    converged = [r for r in table.rows if r["converged"]]
    best_real = min(r["real_s"] for r in converged)
    assert chosen["real_s"] <= max(2 * best_real, best_real + 0.5), (
        f"tuner picked {chosen['step_size']} at {chosen['real_s']}s; "
        f"best converged candidate ran {best_real}s"
    )
