"""Benchmark: regenerate Figure 9 (ML4all vs MLlib vs SystemML)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig09_systems(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig09", ctx))
    emit(tables, "fig09")
    table = tables[0]

    # SGD: ML4all beats MLlib (paper: factors 2-46).  On tiny
    # single-partition datasets iteration-count randomness between the
    # samplers can exceed the per-iteration cost gap, so the requirement
    # is a majority overall and strictly the large multi-partition
    # datasets, where the data-skipping mechanism (not luck) decides.
    sgd_rows = [r for r in table.rows if r["algorithm"] == "sgd"]
    beat = sum(
        1 for r in sgd_rows
        if as_seconds(r["mllib_s"]) is not None
        and r["ml4all_s"] < as_seconds(r["mllib_s"])
    )
    assert beat >= len(sgd_rows) * 0.5, "ML4all should beat MLlib on SGD"
    for r in sgd_rows:
        if r["dataset"].startswith("svm") or r["dataset"] == "higgs":
            mllib = as_seconds(r["mllib_s"])
            if mllib is not None:
                assert r["ml4all_s"] < mllib

    # Large dense data: SystemML fails with simulated OOM (paper 8.4.1).
    dense_rows = [r for r in table.rows if r["dataset"].startswith("svm")]
    if dense_rows:
        assert any(r["systemml_s"] == "OOM" for r in dense_rows)

    # MGD on big datasets: shuffled-partition sampling gives large wins.
    big = [r for r in table.rows
           if r["algorithm"] == "mgd" and r["dataset"] in ("svm1", "svm2",
                                                           "svm3", "higgs")]
    for row in big:
        mllib = as_seconds(row["mllib_s"])
        if mllib is not None:
            assert row["ml4all_s"] < mllib
