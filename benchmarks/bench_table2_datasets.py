"""Benchmark: regenerate Table 2 (the dataset suite)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_table2_datasets(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("table2", ctx))
    emit(tables, "table2")
    table = tables[0]

    names = table.column("name")
    assert names == ["adult", "covtype", "yearpred", "rcv1", "higgs",
                     "svm1", "svm2", "svm3"]
    adult = table.row_for(name="adult")
    assert adult["points"] == "100,827"
    assert adult["features"] == "123"
    svm3 = table.row_for(name="svm3")
    assert svm3["size"] == "160.0G"
