"""Benchmark: regenerate Figure 14 (transformation effect, shuffle)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig14_transform(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig14", ctx))
    emit(tables, "fig14")
    sgd = tables[0]

    # "SGD always benefits from the lazy transformation" with the
    # shuffled-partition sampler: the per-draw parse is tiny while eager
    # pays a full-dataset transform up front.  Allow ties within noise.
    wins = 0
    for row in sgd.rows:
        eager = as_seconds(row["eager_s"])
        lazy = as_seconds(row["lazy_s"])
        if lazy is not None and eager is not None and lazy <= eager * 1.1:
            wins += 1
    assert wins >= len(sgd.rows) * 0.7, (
        f"lazy won only {wins}/{len(sgd.rows)} SGD cases"
    )
