"""Benchmark: regenerate Figure 1 (motivation -- no all-times GD winner)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_fig01_motivation(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig01", ctx))
    emit(tables, "fig01")
    table = tables[0]

    winners = set(table.column("winner"))
    # The motivating claim: no single algorithm wins everywhere.
    assert len(winners) >= 2, f"expected winner diversity, got {winners}"
    # rcv1 at 1e-4 must be an SGD blowout (paper: >1 order of magnitude).
    rcv1 = table.row_for(dataset="rcv1")
    assert rcv1["winner"] == "sgd"
    assert rcv1["bgd_s"] > 10 * rcv1["sgd_s"]
