"""Benchmark: OptimizerService throughput -- cold, warm, and warm restart.

Extension benchmark (not a paper figure): measures optimize() requests
per second through the serving layer.  A cold request pays speculation
plus plan costing; a warm request is answered from the plan cache keyed
by the workload fingerprint; a *warm-restart* request is answered by a
freshly constructed service that loaded a disk-backed plan store
(``cache_path``) written by a previous service instance -- the
across-process analogue of the warm cache.  The acceptance bar is a
>= 10x speedup over cold for both warm paths.
"""

import os
import tempfile
import time

from _helpers import run_once

from repro.api import ML4all
from repro.cluster import ClusterSpec
from repro.core.iterations import SpeculationSettings
from repro.core.plans import TrainingSpec
from repro.experiments.report import Table
from repro.service import OptimizerService


def _measure():
    spec = ClusterSpec(jitter_sigma=0.0)
    service = OptimizerService(
        spec=spec,
        seed=7,
        speculation=SpeculationSettings(
            sample_size=500, time_budget_s=1.0, max_speculation_iters=1000
        ),
    )
    system = ML4all(cluster_spec=spec, seed=7)
    dataset = system.load_dataset("adult")
    rows = []

    for tolerance in (0.05, 0.01, 0.005):
        training = TrainingSpec(task="logreg", tolerance=tolerance, seed=7)

        t0 = time.perf_counter()
        cold = service.optimize(dataset, training)
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit

        warm_runs = 50
        t0 = time.perf_counter()
        for _ in range(warm_runs):
            warm = service.optimize(dataset, training)
            assert warm.cache_hit
        warm_s = (time.perf_counter() - t0) / warm_runs

        rows.append({
            "epsilon": tolerance,
            "chosen_plan": str(cold.chosen_plan),
            "cold_ms": cold_s * 1e3,
            "warm_ms": warm_s * 1e3,
            "speedup": cold_s / warm_s,
            "warm_optimize_per_s": 1.0 / warm_s,
        })

    stats = service.cache_stats()
    table = Table(
        experiment="ext_service_throughput",
        title="OptimizerService throughput: cold vs. warm plan cache",
        columns=["epsilon", "chosen_plan", "cold_ms", "warm_ms",
                 "speedup", "warm_optimize_per_s"],
        rows=rows,
        notes=[
            "cold = speculation + vectorized plan costing on a fresh "
            "fingerprint; warm = plan-cache hit",
            stats.summary(),
        ],
    )
    return [table, _measure_restart()]


def _measure_restart():
    """Warm restart: a new service instance over a disk-backed store."""
    spec = ClusterSpec(jitter_sigma=0.0)
    speculation = SpeculationSettings(
        sample_size=500, time_budget_s=1.0, max_speculation_iters=1000
    )
    system = ML4all(cluster_spec=spec, seed=7)
    dataset = system.load_dataset("adult")
    training = TrainingSpec(task="logreg", tolerance=0.01, seed=7)
    rows = []

    with tempfile.TemporaryDirectory() as tmp:
        for backend in ("json", "db"):
            path = os.path.join(tmp, f"plans.{backend}")

            first = OptimizerService(
                spec=spec, seed=7, speculation=speculation, cache_path=path
            )
            t0 = time.perf_counter()
            cold = first.optimize(dataset, training)
            cold_s = time.perf_counter() - t0
            assert not cold.cache_hit
            first.close()

            # A brand-new service (fresh caches, same store path):
            # construction loads the persisted entry, the request is
            # answered without re-speculation.
            t0 = time.perf_counter()
            restarted = OptimizerService(
                spec=spec, seed=7, speculation=speculation, cache_path=path
            )
            load_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = restarted.optimize(dataset, training)
            warm_s = time.perf_counter() - t0
            restarted.close()

            rows.append({
                "backend": restarted.backend.name,
                "chosen_plan": str(warm.chosen_plan),
                "cold_ms": cold_s * 1e3,
                "store_load_ms": load_s * 1e3,
                "warm_restart_ms": warm_s * 1e3,
                "speedup": cold_s / warm_s,
                "cache_hit": warm.cache_hit,
                "warm_loaded": restarted.warm_loaded,
            })

    return Table(
        experiment="ext_service_throughput",
        title="Warm restart: fresh service over a persistent plan store",
        columns=["backend", "chosen_plan", "cold_ms", "store_load_ms",
                 "warm_restart_ms", "speedup", "cache_hit", "warm_loaded"],
        rows=rows,
        notes=[
            "cold = first-ever request (speculation + costing), written "
            "through to the plan store; warm restart = a NEW "
            "OptimizerService constructed over the same store answers "
            "the same request from persisted state, no re-speculation",
        ],
    )


def test_service_throughput(benchmark, emit):
    tables = run_once(benchmark, _measure)
    emit(tables, "ext_service_throughput")
    table = tables[0]

    assert len(table.rows) == 3
    for row in table.rows:
        # Acceptance bar: a warm plan-cache optimize() is >= 10x faster
        # than a cold one (in practice the gap is 2-4 orders of
        # magnitude; 10x keeps CI noise out of the assertion).
        assert row["speedup"] >= 10.0, row
        assert row["warm_optimize_per_s"] > 100.0, row

    restart = tables[1]
    assert len(restart.rows) == 2
    for row in restart.rows:
        # Acceptance bar: a restarted service over a disk-backed store
        # answers a previously seen request from persisted state
        # (cache hit, no re-speculation) >= 10x faster than cold --
        # warm-restart ~= warm-cache.
        assert row["cache_hit"], row
        assert row["warm_loaded"] == 1, row
        assert row["speedup"] >= 10.0, row
