"""Benchmark: OptimizerService throughput, cold vs. warm plan cache.

Extension benchmark (not a paper figure): measures optimize() requests
per second through the serving layer.  A cold request pays speculation
plus plan costing; a warm request is answered from the plan cache keyed
by the workload fingerprint.  The acceptance bar is a >= 10x speedup for
the warm path.
"""

import time

from _helpers import run_once

from repro.api import ML4all
from repro.cluster import ClusterSpec
from repro.core.iterations import SpeculationSettings
from repro.core.plans import TrainingSpec
from repro.experiments.report import Table
from repro.service import OptimizerService


def _measure():
    spec = ClusterSpec(jitter_sigma=0.0)
    service = OptimizerService(
        spec=spec,
        seed=7,
        speculation=SpeculationSettings(
            sample_size=500, time_budget_s=1.0, max_speculation_iters=1000
        ),
    )
    system = ML4all(cluster_spec=spec, seed=7)
    dataset = system.load_dataset("adult")
    rows = []

    for tolerance in (0.05, 0.01, 0.005):
        training = TrainingSpec(task="logreg", tolerance=tolerance, seed=7)

        t0 = time.perf_counter()
        cold = service.optimize(dataset, training)
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit

        warm_runs = 50
        t0 = time.perf_counter()
        for _ in range(warm_runs):
            warm = service.optimize(dataset, training)
            assert warm.cache_hit
        warm_s = (time.perf_counter() - t0) / warm_runs

        rows.append({
            "epsilon": tolerance,
            "chosen_plan": str(cold.chosen_plan),
            "cold_ms": cold_s * 1e3,
            "warm_ms": warm_s * 1e3,
            "speedup": cold_s / warm_s,
            "warm_optimize_per_s": 1.0 / warm_s,
        })

    stats = service.cache_stats()
    table = Table(
        experiment="ext_service_throughput",
        title="OptimizerService throughput: cold vs. warm plan cache",
        columns=["epsilon", "chosen_plan", "cold_ms", "warm_ms",
                 "speedup", "warm_optimize_per_s"],
        rows=rows,
        notes=[
            "cold = speculation + vectorized plan costing on a fresh "
            "fingerprint; warm = plan-cache hit",
            stats.summary(),
        ],
    )
    return [table]


def test_service_throughput(benchmark, emit):
    tables = run_once(benchmark, _measure)
    emit(tables, "ext_service_throughput")
    table = tables[0]

    assert len(table.rows) == 3
    for row in table.rows:
        # Acceptance bar: a warm plan-cache optimize() is >= 10x faster
        # than a cold one (in practice the gap is 2-4 orders of
        # magnitude; 10x keeps CI noise out of the assertion).
        assert row["speedup"] >= 10.0, row
        assert row["warm_optimize_per_s"] > 100.0, row
