"""Benchmark: regenerate Figure 8 (optimizer effectiveness)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_fig08_effectiveness(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig08", ctx))
    emit(tables, "fig08")
    table = tables[0]

    for row in table.rows:
        # The optimizer must avoid the worst plans: the executed chosen
        # plan should be much closer to the exhaustive best than to the
        # worst (the paper's optimizer always picks the best).
        spread = row["max_s"] - row["min_s"]
        if spread <= 0.5:  # all plans tie; nothing to distinguish
            continue
        distance = row["chosen_exec_s"] - row["min_s"]
        assert distance <= 0.35 * spread, (
            f"{row['dataset']}: chosen plan {row['chosen']} at "
            f"{row['chosen_exec_s']}s vs best {row['min_s']}s / worst "
            f"{row['max_s']}s"
        )
        # Optimization overhead stays in the paper's few-seconds regime.
        assert row["speculation_s"] < 30
