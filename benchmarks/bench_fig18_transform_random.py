"""Benchmark: regenerate Figure 18 (transform effect, random-partition)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig18_transform_random(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig18", ctx))
    emit(tables, "fig18")
    mgd, sgd = tables

    # "SGD benefits from the lazy transformation": guaranteed wherever
    # the run is short relative to the one-time transform -- i.e. the
    # large datasets (svm1 converges in a handful of draws).
    for name in ("rcv1", "svm1"):
        row = sgd.row_for(dataset=name)
        eager = as_seconds(row["eager_s"])
        lazy = as_seconds(row["lazy_s"])
        assert lazy < eager, f"{name}: lazy {lazy} vs eager {eager}"

    # MGD with lazy random-partition on big data is the pathological
    # plan the paper had to stop after 1.5 hours.
    svm1 = mgd.row_for(dataset="svm1")
    assert as_seconds(svm1["lazy_s"]) > 5 * as_seconds(svm1["eager_s"])
