"""Benchmark: regenerate Figures 15-16 (curve fitting / step sizes)."""

from _helpers import run_once

from repro.experiments import run_experiment


def _as_int(cell):
    if cell is None or (isinstance(cell, str) and cell.startswith(">")):
        return None
    return int(cell)


def test_fig15_16_curvefit(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig15_16", ctx))
    emit(tables, "fig15_16")
    fig15, fig16 = tables

    # A curve must be fitted for every step schedule.
    for row in fig15.rows:
        assert row["predicted_T(0.001)"] is not None, row

    # Where the real run converged within the cap, the prediction should
    # land within an order of magnitude (the paper's Figures 15-16 show
    # the fitted curve reaching 0.001 near the real execution).
    for table in (fig15, fig16):
        for row in table.rows:
            real = _as_int(row["real_T(0.001)"])
            pred = row["predicted_T(0.001)"]
            if real is None or pred is None:
                continue
            assert 0.1 <= pred / real <= 10, (
                f"{row}: prediction {pred} vs real {real}"
            )
