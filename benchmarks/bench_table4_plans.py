"""Benchmark: regenerate Table 4 (chosen plan per GD algorithm)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_table4_plans(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("table4", ctx))
    emit(tables, "table4")
    table = tables[0]

    assert len(table.rows) >= 4
    for row in table.rows:
        # BGD has exactly one plan; stochastic algorithms must report a
        # transform-sampling combination.
        assert row["bgd_plan"] == "-"
        assert "-" in row["sgd_plan"] and row["sgd_plan"] != "-"
        assert row["sgd_iters"] >= 1
        assert row["mgd_iters"] >= 1
    # On the dense SVM datasets SGD stops within a handful of draws
    # (the paper's Table 4 reports 4-8 iterations).
    svm_rows = [r for r in table.rows if r["dataset"].startswith("svm")]
    for row in svm_rows:
        assert row["sgd_iters"] <= 50
