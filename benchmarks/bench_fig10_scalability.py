"""Benchmark: regenerate Figure 10 (scalability sweeps)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig10_scalability(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig10", ctx))
    emit(tables, "fig10")
    table = tables[0]

    for row in table.rows:
        mllib = as_seconds(row["mllib_s"])
        if mllib is None:
            continue
        # Both ML4all plans beat MLlib; lazy-shuffle by >=1 order of
        # magnitude on the larger sweep points (paper: >1 order).
        assert row["lazy_shuffle_s"] < mllib
        assert row["eager_random_s"] < mllib

    big_rows = [r for r in table.rows if r["sim_gb"] >= 10]
    for row in big_rows:
        mllib = as_seconds(row["mllib_s"])
        if mllib is not None:
            assert mllib / max(row["lazy_shuffle_s"], 1e-9) >= 10

    # lazy-shuffle scales at least as well as eager-random everywhere.
    better = sum(
        1 for r in table.rows
        if r["lazy_shuffle_s"] <= r["eager_random_s"] * 1.05
    )
    assert better >= len(table.rows) * 0.7
