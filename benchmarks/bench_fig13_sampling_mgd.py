"""Benchmark: regenerate Figure 13 (sampling effect in MGD)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig13_sampling_mgd(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig13", ctx))
    emit(tables, "fig13")
    eager = tables[0]

    # On multi-partition datasets, shuffled-partition's per-iteration
    # cost beats Bernoulli's full scans (paper: "for larger datasets ...
    # the shuffle-partition is faster in all cases").
    for row in eager.rows:
        if row["partitions"] > 1:
            bern = row["bernoulli_ms/it"]
            shuf = row["shuffle_ms/it"]
            if bern is not None and shuf is not None:
                assert shuf <= bern * 1.1, (
                    f"{row['dataset']}: shuffle {shuf} vs bernoulli "
                    f"{bern} ms/it"
                )

    lazy = tables[1]
    # Bernoulli is excluded from lazy plans (Section 6).
    assert all(row["bernoulli_s"] == "n/a" for row in lazy.rows)
