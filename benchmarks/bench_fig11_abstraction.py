"""Benchmark: regenerate Figure 11 (abstraction benefit/overhead)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_fig11_abstraction(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig11", ctx))
    emit(tables, "fig11")
    table = tables[0]

    # ML4all ~= hand-coded Spark (paper: "almost no additional overhead").
    for row in table.rows:
        assert abs(row["overhead_pct"]) <= 25, (
            f"{row['dataset']}/{row['variant']}: abstraction overhead "
            f"{row['overhead_pct']}%"
        )

    # Bismarck OOM cells (paper: rcv1 MGD(10K)+BGD, svm1 BGD).
    assert table.row_for(dataset="rcv1", variant="MGD(10K)")["bismarck_s"] \
        == "OOM"
    assert table.row_for(dataset="rcv1", variant="BGD")["bismarck_s"] == "OOM"
    assert table.row_for(dataset="svm1", variant="BGD")["bismarck_s"] == "OOM"
    # And where Bismarck runs on big batches, its serialized combined
    # step (collect raw batch + single-threaded gradient) loses to
    # ML4all's data-local parallel Compute (paper: ~3x on svm1 MGD(10K)).
    svm1_mgd10k = table.row_for(dataset="svm1", variant="MGD(10K)")
    if svm1_mgd10k["bismarck_s"] != "OOM":
        assert float(svm1_mgd10k["bismarck_s"]) > \
            svm1_mgd10k["ml4all_s"] * 1.05
