"""Benchmark: regenerate Figure 17 (sampling effect in SGD, appendix)."""

from _helpers import as_seconds, run_once

from repro.experiments import run_experiment


def test_fig17_sampling_sgd(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig17", ctx))
    emit(tables, "fig17")
    eager = tables[0]

    # Mechanism check on the *per-iteration* cost (iteration counts vary
    # stochastically per sampler): the shuffled-partition cursor read is
    # never dearer than random accesses, and Bernoulli's full scans are
    # the most expensive draw on multi-partition datasets.
    for row in eager.rows:
        shuf = row["shuffle_ms/it"]
        rand = row["random_ms/it"]
        bern = row["bernoulli_ms/it"]
        assert shuf <= rand * 1.25, (
            f"{row['dataset']}: shuffle {shuf} vs random {rand} ms/it"
        )
        if row["partitions"] > 1:
            assert bern >= shuf, (
                f"{row['dataset']}: bernoulli {bern} vs shuffle {shuf} ms/it"
            )
