"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper figure/table through the experiment
harness, asserts its qualitative shape (who wins, rough factors), prints
the table and persists it under ``bench_results/``.

Scale control: benchmarks run in quick mode by default (a subset of the
Table 2 datasets); set ``REPRO_FULL=1`` to regenerate every cell.
"""

import os

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext.from_env()


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture
def emit(results_dir):
    """Print tables and persist them as <experiment_id>.txt / .md."""

    def _emit(tables, experiment_id):
        text = "\n\n".join(t.render() for t in tables)
        markdown = "\n\n".join(t.to_markdown() for t in tables)
        print()
        print(text)
        with open(os.path.join(results_dir, f"{experiment_id}.txt"), "w") as f:
            f.write(text + "\n")
        with open(os.path.join(results_dir, f"{experiment_id}.md"), "w") as f:
            f.write(markdown + "\n")
        return tables

    return _emit
