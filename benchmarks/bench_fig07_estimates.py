"""Benchmark: regenerate Figure 7 (training-time estimation accuracy)."""

from _helpers import run_once

from repro.experiments import run_experiment


def test_fig07_estimates(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("fig07", ctx))
    emit(tables, "fig07")
    table = tables[0]

    fixed_rows = [r for r in table.rows if r["mode"].startswith("fixed")]
    assert fixed_rows
    # Paper: fixed-iteration estimates within 17% of actual; allow 40%
    # headroom for the engine's jitter and cache dynamics.
    for row in fixed_rows:
        assert row["error_pct"] <= 40, (
            f"{row['dataset']}: cost-per-iteration estimate off by "
            f"{row['error_pct']}%"
        )
    # Run-to-convergence adds iteration-estimation error; require the
    # median case to stay within a factor of ~2.5.
    conv_rows = [r for r in table.rows if not r["mode"].startswith("fixed")]
    ratios = sorted(
        max(r["estimated_s"], 0.01) / max(r["real_s"], 0.01)
        for r in conv_rows
    )
    median = ratios[len(ratios) // 2]
    assert 1 / 2.5 <= median <= 2.5, f"median estimate ratio {median}"
