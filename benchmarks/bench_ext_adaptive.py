"""Benchmark: adaptive runtime vs one-shot under a perturbed cost model.

Extension benchmark (not a paper figure).  The cost model is perturbed
to under-estimate one algorithm by >= 2x, making the one-shot optimizer
mis-pick it; the acceptance bars are:

* adaptive training converges to the target epsilon with lower total
  simulated cost than the one-shot mis-pick;
* the repeated service request is answered from re-costed cached
  speculation (one optimization computed for two requests) and does not
  need any mid-flight switch.
"""

import re

from _helpers import run_once

from repro.experiments.registry import run_experiment


def test_adaptive_vs_one_shot(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("ext_adaptive", ctx))
    emit(tables, "ext_adaptive")
    table = tables[0]

    one_shot = table.row_for(mode="one-shot perturbed")
    adaptive = table.row_for(mode="adaptive perturbed")
    repeat = table.row_for(mode="calibrated repeat")

    # The monitor must notice the mis-pick and switch at least once.
    assert adaptive["switches"] >= 1
    # Adaptive training beats riding the mis-picked plan to the end.
    assert adaptive["sim_s"] < one_shot["sim_s"]
    # The calibrated repeat needs no switching: the corrected cost model
    # picks a sound plan up front, and cheaper than the mis-pick.
    assert repeat["switches"] == 0
    assert repeat["sim_s"] < one_shot["sim_s"]
    # The experiment's own note records the no-re-speculation property.
    assert any("recalibrated from cached speculation" in note
               for note in table.notes)


def test_switch_heavy_state_carryover(benchmark, ctx, emit):
    """Switch-heavy momentum/adam scenario: carrying the full optimizer
    state across mid-flight switches beats the legacy weights-only reset
    (which restarts the MLlib beta/sqrt(i) schedule at 1 and zeroes the
    updater buffers on every switch)."""
    tables = run_once(
        benchmark, lambda: run_experiment("ext_adaptive_switch", ctx)
    )
    emit(tables, "ext_adaptive_switch")
    table = tables[0]

    carried = table.row_for(mode="state carried")
    reset = table.row_for(mode="state reset (legacy)")

    # The mis-pick must actually be noticed: both runs switch.
    assert carried["switches"] >= 1
    assert reset["switches"] >= 1
    # The fix: a switched run no longer pays the step-size restart.
    assert carried["sim_s"] < reset["sim_s"]
    # The resumed segment's first step size is continuous -- it picks up
    # the beta/sqrt(i) schedule at global k+1, not beta/sqrt(1).
    continuity = next(
        note for note in table.notes if "step size continuous" in note
    )
    resumed_at = int(re.search(r"beta/sqrt\((\d+)\)", continuity).group(1))
    assert resumed_at > 1
    # The transfer policy is recorded in the trace.
    assert any(note.startswith("state transfer:") for note in table.notes)
