"""Benchmark: adaptive runtime vs one-shot under a perturbed cost model.

Extension benchmark (not a paper figure).  The cost model is perturbed
to under-estimate one algorithm by >= 2x, making the one-shot optimizer
mis-pick it; the acceptance bars are:

* adaptive training converges to the target epsilon with lower total
  simulated cost than the one-shot mis-pick;
* the repeated service request is answered from re-costed cached
  speculation (one optimization computed for two requests) and does not
  need any mid-flight switch.
"""

from _helpers import run_once

from repro.experiments.registry import run_experiment


def test_adaptive_vs_one_shot(benchmark, ctx, emit):
    tables = run_once(benchmark, lambda: run_experiment("ext_adaptive", ctx))
    emit(tables, "ext_adaptive")
    table = tables[0]

    one_shot = table.row_for(mode="one-shot perturbed")
    adaptive = table.row_for(mode="adaptive perturbed")
    repeat = table.row_for(mode="calibrated repeat")

    # The monitor must notice the mis-pick and switch at least once.
    assert adaptive["switches"] >= 1
    # Adaptive training beats riding the mis-picked plan to the end.
    assert adaptive["sim_s"] < one_shot["sim_s"]
    # The calibrated repeat needs no switching: the corrected cost model
    # picks a sound plan up front, and cheaper than the mis-pick.
    assert repeat["switches"] == 0
    assert repeat["sim_s"] < one_shot["sim_s"]
    # The experiment's own note records the no-re-speculation property.
    assert any("recalibrated from cached speculation" in note
               for note in table.notes)
